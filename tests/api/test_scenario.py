"""Tests for the Scenario dataclass and the component registries."""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import (
    BASELINES,
    ENGINES,
    SOLVERS,
    WORKLOADS,
    Registry,
    Scenario,
    get_baseline,
    get_engine,
    get_experiment,
    get_solver,
    get_workload,
    list_baselines,
    list_engines,
    list_experiments,
    list_solvers,
    list_workloads,
    register_solver,
)
from repro.exceptions import RegistryError, ScenarioError, SproutError


class TestScenarioValidation:
    def test_defaults_are_valid(self):
        scenario = Scenario()
        assert scenario.workload == "paper_default"
        assert scenario.engine == "batch"
        assert scenario.solver == "projected_gradient"
        assert scenario.uses_optimizer
        assert scenario.n == 7 and scenario.k == 4

    def test_frozen(self):
        scenario = Scenario()
        with pytest.raises(dataclasses.FrozenInstanceError):
            scenario.engine = "event"

    def test_unknown_engine_lists_known_names(self):
        with pytest.raises(RegistryError, match="unknown engine 'warp'") as excinfo:
            Scenario(engine="warp")
        assert "batch" in str(excinfo.value) and "event" in str(excinfo.value)

    def test_unknown_solver_and_workload_and_policy(self):
        with pytest.raises(RegistryError, match="unknown solver"):
            Scenario(solver="newton")
        with pytest.raises(RegistryError, match="unknown workload"):
            Scenario(workload="zipf")
        with pytest.raises(RegistryError, match="unknown baseline"):
            Scenario(policy="belady")

    def test_baseline_policy_is_valid(self):
        scenario = Scenario(policy="no_cache")
        assert not scenario.uses_optimizer

    @pytest.mark.parametrize(
        "fields",
        [
            {"num_files": 0},
            {"cache_capacity": -1},
            {"code": (4, 7)},
            {"code": (7, 0)},
            {"code": (7, 4, 2)},
            {"code": 74},
            {"code": "74"},
            {"code": (None, 4)},
            {"scale": "huge"},
            {"tolerance": 0.0},
            {"rate_scale": 0.0},
            {"horizon": -1.0},
            {"warmup_fraction": 1.0},
            {"seed": "2016"},
        ],
    )
    def test_invalid_fields_rejected(self, fields):
        with pytest.raises(ScenarioError):
            Scenario(**fields)

    def test_effective_horizon_follows_scale(self):
        assert Scenario(scale="fast").effective_horizon == pytest.approx(200_000.0)
        assert Scenario(scale="paper").effective_horizon == pytest.approx(2_000_000.0)
        assert Scenario(horizon=123.0).effective_horizon == pytest.approx(123.0)

    def test_replace_revalidates(self):
        scenario = Scenario()
        assert scenario.replace(engine="event").engine == "event"
        with pytest.raises(RegistryError):
            scenario.replace(engine="warp")


class TestScenarioSerialization:
    def test_dict_round_trip(self):
        scenario = Scenario(
            workload="ten_file",
            num_files=10,
            cache_capacity=10,
            policy="whole_file",
            engine="event",
            seed=7,
            scale="paper",
            rate_scale=65.0,
            workload_params={"placement_mode": "split"},
        )
        data = scenario.to_dict()
        rebuilt = Scenario.from_dict(data)
        assert rebuilt == scenario
        # to_dict must be JSON-safe: plain types only.
        assert data["code"] == [7, 4]
        assert isinstance(data["workload_params"], dict)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ScenarioError, match="unknown Scenario fields"):
            Scenario.from_dict({"num_files": 10, "files": 10})

    def test_describe_mentions_components(self):
        text = Scenario(policy="exact").describe()
        assert "exact" in text and "paper_default" in text

    def test_scenarios_are_hashable(self):
        base = Scenario(num_files=12, cache_capacity=6, workload_params={"num_nodes": 9})
        same = Scenario(num_files=12, cache_capacity=6, workload_params={"num_nodes": 9})
        other = base.replace(seed=1)
        assert base == same and hash(base) == hash(same)
        assert {base, same, other} == {base, other}
        # hash/eq contract holds for value-equal params of different types
        float_params = Scenario(
            num_files=12, cache_capacity=6, workload_params={"num_nodes": 9.0}
        )
        assert base == float_params and hash(base) == hash(float_params)


class TestRegistries:
    def test_builtin_components_registered(self):
        from repro.api import list_policies

        assert set(list_solvers()) == {"projected_gradient", "frank_wolfe", "slsqp"}
        assert set(list_engines()) == {"event", "batch"}
        assert set(list_baselines()) == {"no_cache", "whole_file", "proportional", "exact"}
        assert set(list_workloads()) == {
            "paper_default", "ten_file", "diurnal", "flash_crowd", "drift", "trace",
        }
        assert set(list_policies()) == {"lru", "lfu", "arc", "ttl", "functional_static"}
        assert set(list_experiments()) == {
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig9", "fig10", "fig11",
            "fig12", "fig13", "fig14", "tables", "scenario",
        }
        from repro.api import list_controllers, list_faults

        assert set(list_faults()) == {
            "osd_crash", "degraded_read", "straggler", "repair_traffic",
        }
        assert set(list_controllers()) == {"online", "cold", "periodic"}

    def test_lookups_return_specs(self):
        assert get_solver("projected_gradient").name == "projected_gradient"
        assert get_engine("batch").description
        assert callable(get_baseline("no_cache").build)
        assert callable(get_workload("paper_default").build)
        assert get_experiment("fig4").title.startswith("Latency")

    def test_unknown_experiment_error(self):
        with pytest.raises(RegistryError, match="unknown experiment 'fig8'"):
            get_experiment("fig8")

    def test_registry_error_is_sprout_error(self):
        with pytest.raises(SproutError):
            get_engine("warp")

    def test_duplicate_registration_rejected(self):
        registry = Registry("widget")
        registry.register("a", 1)
        with pytest.raises(RegistryError, match="already registered"):
            registry.register("a", 2)
        registry.register("a", 2, replace=True)
        assert registry.get("a") == 2

    def test_registry_container_protocol(self):
        assert "batch" in ENGINES
        assert "warp" not in ENGINES
        assert len(SOLVERS) == 3
        assert list(iter(WORKLOADS)) == sorted(list_workloads())
        assert BASELINES.kind == "baseline"

    def test_plugging_in_a_solver_makes_scenarios_valid(self):
        @register_solver("custom_test_solver", description="test-only stub")
        def optimize(model, **kwargs):  # pragma: no cover - never run
            raise NotImplementedError

        try:
            scenario = Scenario(solver="custom_test_solver")
            assert scenario.solver == "custom_test_solver"
        finally:
            SOLVERS.unregister("custom_test_solver")
        with pytest.raises(RegistryError):
            Scenario(solver="custom_test_solver")


class TestExperimentSpec:
    def test_scales_have_fast_and_paper(self):
        for name in list_experiments():
            spec = get_experiment(name)
            assert {"fast", "paper"} <= set(spec.scale_names())

    def test_unknown_scale_rejected(self):
        with pytest.raises(RegistryError, match="has no scale"):
            get_experiment("fig4").kwargs_for("gigantic")

    def test_kwargs_for_returns_copy(self):
        spec = get_experiment("fig4")
        kwargs = spec.kwargs_for("fast")
        kwargs["num_files"] = -1
        assert spec.kwargs_for("fast")["num_files"] == 100

    def test_accepts_reflects_signature(self):
        assert get_experiment("fig7").accepts("engine")
        assert not get_experiment("fig3").accepts("engine")
        assert get_experiment("fig9").accepts("seed")

    def test_unsupported_uniform_flags_are_dropped(self):
        # fig3 takes no engine parameter; a uniform CLI flag must not crash.
        result = get_experiment("fig3").run(
            scale="fast", cache_sizes=(10,), num_files=10, engine="event"
        )
        assert len(result.curves) == 1

    def test_unknown_override_is_an_error(self):
        # Typo'd parameters must not silently run with defaults.
        with pytest.raises(RegistryError, match="does not accept parameter"):
            get_experiment("fig3").run(scale="fast", cache_sizez=(10,))
