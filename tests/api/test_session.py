"""End-to-end tests of the run_scenario facade and RunResult serialization,
including parity of the registry path with the legacy per-module API."""

from __future__ import annotations

import json

import pytest

from repro.api import RunResult, Scenario, Session, get_experiment, run_scenario
from repro.core.algorithm import CacheOptimizer
from repro.experiments import fig4_cache_size
from repro.workloads.defaults import paper_default_model


@pytest.fixture(scope="module")
def small_run() -> RunResult:
    scenario = Scenario(
        num_files=20, cache_capacity=10, horizon=50_000.0, seed=2016
    )
    return run_scenario(scenario)


class TestRunScenario:
    def test_end_to_end_pipeline(self, small_run):
        assert small_run.objective > 0.0
        placement = small_run.placement
        assert placement.total_cached_chunks <= placement.cache_capacity
        assert small_run.optimization is not None
        assert small_run.optimization.converged
        assert small_run.simulation is not None
        assert small_run.simulated_mean_latency > 0.0
        assert 0.0 <= small_run.cache_chunk_fraction <= 1.0
        assert {"build_model", "optimize", "simulate", "total"} <= set(small_run.timings)

    def test_summary_is_readable(self, small_run):
        text = small_run.summary()
        assert "analytical bound" in text
        assert "Algorithm 1" in text
        assert "simulated (batch)" in text

    def test_json_serialization_round_trips(self, small_run, tmp_path):
        payload = json.loads(small_run.to_json())
        assert payload["scenario"]["num_files"] == 20
        assert payload["objective"] == pytest.approx(small_run.objective)
        assert payload["optimization"]["converged"] is True
        assert payload["simulation"]["engine"] == "batch"
        assert payload["simulation"]["requests_completed"] > 0
        path = small_run.write_json(tmp_path / "run.json")
        assert json.loads(path.read_text()) == payload

    def test_keyword_facade_and_overrides(self):
        result = run_scenario(
            num_files=12, cache_capacity=6, simulate=False, tolerance=0.05
        )
        assert result.simulation is None
        assert result.scenario.num_files == 12
        base = Scenario(num_files=12, cache_capacity=6, simulate=False, tolerance=0.05)
        overridden = run_scenario(base, policy="no_cache")
        assert overridden.scenario.policy == "no_cache"

    def test_seeded_runs_are_reproducible(self):
        scenario = Scenario(num_files=15, cache_capacity=8, horizon=30_000.0)
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert first.objective == pytest.approx(second.objective)
        assert first.simulated_mean_latency == pytest.approx(
            second.simulated_mean_latency
        )

    def test_engines_are_statistically_consistent(self):
        scenario = Scenario(num_files=15, cache_capacity=8, horizon=100_000.0)
        batch = run_scenario(scenario)
        event = run_scenario(scenario.replace(engine="event"))
        assert batch.simulated_mean_latency == pytest.approx(
            event.simulated_mean_latency, rel=0.25
        )

    def test_baseline_policies_run_without_optimizer(self):
        for policy in ("no_cache", "whole_file", "proportional", "exact"):
            result = run_scenario(
                Scenario(num_files=12, cache_capacity=8, policy=policy, simulate=False)
            )
            assert result.optimization is None
            assert "baseline" in result.timings
            if policy == "no_cache":
                assert result.placement.total_cached_chunks == 0

    def test_optimal_beats_no_cache_bound(self):
        shared = dict(num_files=20, cache_capacity=20, simulate=False)
        optimal = run_scenario(Scenario(**shared))
        no_cache = run_scenario(Scenario(policy="no_cache", **shared))
        assert optimal.objective <= no_cache.objective + 1e-9

    def test_ten_file_workload(self):
        result = run_scenario(
            Scenario(
                workload="ten_file",
                num_files=10,
                cache_capacity=10,
                rate_scale=65.0,
                simulate=False,
                tolerance=0.001,
            )
        )
        assert len(result.placement.files) == 10

    def test_session_keeps_history(self):
        session = Session()
        scenario = Scenario(num_files=10, cache_capacity=5, simulate=False)
        session.run(scenario)
        session.run(scenario.replace(policy="no_cache"))
        assert len(session.results) == 2
        assert session.results[0].scenario.uses_optimizer
        assert not session.results[1].scenario.uses_optimizer


class TestParityWithLegacyApi:
    """The redesigned surface must reproduce the pre-redesign outputs."""

    def test_run_scenario_matches_direct_optimizer(self):
        scenario = Scenario(num_files=25, cache_capacity=12, simulate=False)
        via_facade = run_scenario(scenario)
        model = paper_default_model(num_files=25, cache_capacity=12, seed=2016)
        direct = CacheOptimizer(model, tolerance=0.01).optimize()
        assert via_facade.objective == pytest.approx(direct.placement.objective)
        assert (
            via_facade.placement.cached_chunks() == direct.placement.cached_chunks()
        )

    def test_registry_fig4_matches_legacy_module_run(self):
        kwargs = dict(cache_sizes=(0, 30, 60), num_files=30)
        via_registry = get_experiment("fig4").run(scale="fast", **kwargs)
        with pytest.warns(DeprecationWarning):
            legacy = fig4_cache_size.run(**kwargs)
        assert via_registry.latencies() == legacy.latencies()
        assert [p.cached_chunks for p in via_registry.points] == [
            p.cached_chunks for p in legacy.points
        ]

    def test_solver_registry_matches_direct_solver_choice(self):
        from repro.api import get_solver

        model = paper_default_model(num_files=15, cache_capacity=8, seed=4)
        via_registry = get_solver("frank_wolfe").optimize(model, tolerance=0.05)
        direct = CacheOptimizer(model, tolerance=0.05, pi_solver="frank_wolfe").optimize()
        assert via_registry.final_objective == pytest.approx(direct.final_objective)
