"""Tests for the M/G/1 moments (Eqs. 3-4) and the Lemma-1 latency bound."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import OptimizationError, StabilityError
from repro.queueing.distributions import (
    DeterministicService,
    ExponentialService,
)
from repro.queueing.mg1 import MG1Queue, QueueMoments, queue_moment_derivatives, queue_moments
from repro.queueing.order_stats import (
    latency_bound_at_z,
    latency_upper_bound,
    optimal_z,
    weighted_latency_objective,
)
from repro.queueing.stability import check_stability, max_supportable_rate, utilization


class TestPollaczekKhinchine:
    def test_mm1_sojourn_time(self):
        # For M/M/1 the mean sojourn time is 1 / (mu - lambda).
        mu, lam = 2.0, 1.0
        moments = queue_moments(lam, ExponentialService(mu))
        assert moments.mean == pytest.approx(1.0 / (mu - lam))

    def test_mm1_sojourn_variance(self):
        # For M/M/1 the sojourn time is exponential with rate mu - lambda...
        # our expression is the P-K decomposition (service + waiting), whose
        # variance for M/M/1 equals 1/(mu-lambda)^2.
        mu, lam = 2.0, 1.0
        moments = queue_moments(lam, ExponentialService(mu))
        assert moments.variance == pytest.approx(1.0 / (mu - lam) ** 2, rel=1e-9)

    def test_md1_waiting_time(self):
        # M/D/1: waiting time = rho * s / (2 (1 - rho)); sojourn adds s.
        service_time = 1.0
        lam = 0.5
        rho = lam * service_time
        moments = queue_moments(lam, DeterministicService(service_time))
        expected = service_time + rho * service_time / (2 * (1 - rho))
        assert moments.mean == pytest.approx(expected)

    def test_zero_arrivals_gives_pure_service(self):
        moments = queue_moments(0.0, ExponentialService(0.25))
        assert moments.mean == pytest.approx(4.0)
        assert moments.variance == pytest.approx(16.0)
        assert moments.utilization == 0.0

    def test_unstable_raises_in_strict_mode(self):
        with pytest.raises(StabilityError):
            queue_moments(3.0, ExponentialService(2.0))

    def test_unstable_clamped_in_lenient_mode(self):
        moments = queue_moments(3.0, ExponentialService(2.0), strict=False)
        assert moments.utilization < 1.0
        assert math.isfinite(moments.mean)

    def test_negative_rate_rejected(self):
        with pytest.raises(StabilityError):
            queue_moments(-0.1, ExponentialService(1.0))

    def test_moments_increase_with_load(self):
        service = ExponentialService(1.0)
        means = [queue_moments(lam, service).mean for lam in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert all(b > a for a, b in zip(means, means[1:]))

    def test_derivatives_match_finite_differences(self):
        service = ExponentialService(1.0)
        lam = 0.4
        eps = 1e-6
        d_mean, d_var = queue_moment_derivatives(lam, service)
        plus = queue_moments(lam + eps, service)
        minus = queue_moments(lam - eps, service)
        assert d_mean == pytest.approx((plus.mean - minus.mean) / (2 * eps), rel=1e-4)
        assert d_var == pytest.approx((plus.variance - minus.variance) / (2 * eps), rel=1e-4)

    def test_mg1_queue_wrapper(self):
        queue = MG1Queue(ExponentialService(1.0), arrival_rate=0.5)
        assert queue.is_stable
        assert queue.utilization == pytest.approx(0.5)
        assert queue.mean_waiting_time() == pytest.approx(2.0)
        queue.arrival_rate = 0.9
        assert queue.utilization == pytest.approx(0.9)
        with pytest.raises(StabilityError):
            queue.arrival_rate = -1.0


class TestStabilityHelpers:
    def test_utilization(self):
        assert utilization(0.5, ExponentialService(1.0)) == pytest.approx(0.5)

    def test_check_stability_passes(self):
        services = [ExponentialService(1.0), ExponentialService(2.0)]
        utilizations = check_stability([0.5, 1.0], services)
        assert utilizations == {0: pytest.approx(0.5), 1: pytest.approx(0.5)}

    def test_check_stability_raises(self):
        with pytest.raises(StabilityError):
            check_stability([1.5], [ExponentialService(1.0)])

    def test_check_stability_with_margin(self):
        with pytest.raises(StabilityError):
            check_stability([0.95], [ExponentialService(1.0)], margin=0.1)

    def test_max_supportable_rate(self):
        assert max_supportable_rate(ExponentialService(2.0), margin=0.25) == pytest.approx(1.5)


class TestLemma1Bound:
    def _moments(self):
        return {
            0: QueueMoments(mean=2.0, variance=1.0, utilization=0.4),
            1: QueueMoments(mean=5.0, variance=4.0, utilization=0.7),
            2: QueueMoments(mean=3.0, variance=2.0, utilization=0.5),
        }

    def test_bound_at_least_weighted_mean(self):
        # With z = 0 the bound reduces to sum pi_j * E[Q_j] (since
        # sqrt(E^2+Var) >= E), so the optimal bound is at least ... a simple
        # sanity floor: the bound must be >= max over j of pi_j * E[Q_j].
        probabilities = {0: 1.0, 1: 1.0}
        moments = self._moments()
        bound = latency_upper_bound(probabilities, moments)
        assert bound >= 5.0  # at least the slowest selected node's mean

    def test_bound_is_convex_in_z(self):
        probabilities = {0: 0.5, 1: 1.0, 2: 0.5}
        moments = self._moments()
        zs = np.linspace(0.0, 10.0, 41)
        values = [latency_bound_at_z(z, probabilities, moments) for z in zs]
        # Convexity: second differences non-negative.
        second_differences = np.diff(values, 2)
        assert np.all(second_differences > -1e-8)

    def test_optimal_z_minimises(self):
        probabilities = {0: 0.5, 1: 1.0, 2: 0.5}
        moments = self._moments()
        z_star = optimal_z(probabilities, moments)
        best = latency_bound_at_z(z_star, probabilities, moments)
        for z in np.linspace(0.0, 10.0, 101):
            assert best <= latency_bound_at_z(float(z), probabilities, moments) + 1e-6

    def test_single_node_bound_reduces_to_mean_plus_half_spread(self):
        # With a single node selected w.p. 1, Lemma 1 gives exactly E[Q]
        # when Var = 0 (the max over one deterministic-delay node).
        moments = {0: QueueMoments(mean=4.0, variance=0.0, utilization=0.5)}
        bound = latency_upper_bound({0: 1.0}, moments)
        assert bound == pytest.approx(4.0, abs=1e-6)

    def test_empty_selection_gives_zero(self):
        assert latency_upper_bound({}, {}) == pytest.approx(0.0)
        assert latency_upper_bound({0: 0.0}, self._moments()) == pytest.approx(0.0)

    def test_probability_validation(self):
        with pytest.raises(OptimizationError):
            latency_bound_at_z(0.0, {0: 1.5}, self._moments())
        with pytest.raises(OptimizationError):
            latency_bound_at_z(0.0, {7: 0.5}, self._moments())

    def test_weighted_objective(self):
        moments = self._moments()
        files = [{0: 1.0, 1: 1.0}, {1: 0.5, 2: 1.0}]
        rates = [2.0, 1.0]
        objective = weighted_latency_objective(files, rates, moments)
        expected = (
            2.0 / 3.0 * latency_upper_bound(files[0], moments)
            + 1.0 / 3.0 * latency_upper_bound(files[1], moments)
        )
        assert objective == pytest.approx(expected)

    def test_weighted_objective_validation(self):
        with pytest.raises(OptimizationError):
            weighted_latency_objective([{0: 1.0}], [1.0, 2.0], self._moments())
        with pytest.raises(OptimizationError):
            weighted_latency_objective([{0: 1.0}], [0.0], self._moments())

    @given(
        means=st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=2, max_size=6),
        variances=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_bound_dominates_expected_max_lower_bound(self, means, variances):
        # The mean of the max of the selected nodes is at least the largest
        # selected mean; Lemma 1 upper-bounds the mean of the max, so the
        # computed bound must also be at least that largest mean when all
        # probabilities are 1 (every node always selected).
        size = min(len(means), len(variances))
        moments = {
            j: QueueMoments(mean=means[j], variance=variances[j], utilization=0.5)
            for j in range(size)
        }
        probabilities = {j: 1.0 for j in range(size)}
        bound = latency_upper_bound(probabilities, moments)
        assert bound >= max(means[:size]) - 1e-6
