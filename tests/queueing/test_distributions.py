"""Tests for service-time distributions and their moments."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ModelError
from repro.queueing.distributions import (
    DeterministicService,
    EmpiricalMomentsService,
    ExponentialService,
    LogNormalService,
    ParetoService,
    ShiftedExponentialService,
)

positive_floats = st.floats(min_value=0.01, max_value=100.0, allow_nan=False)


class TestExponential:
    def test_moments(self):
        service = ExponentialService(rate=0.5)
        assert service.mean == pytest.approx(2.0)
        assert service.second_moment == pytest.approx(8.0)
        assert service.third_moment == pytest.approx(48.0)
        assert service.variance == pytest.approx(4.0)
        assert service.squared_coefficient_of_variation == pytest.approx(1.0)

    def test_invalid_rate(self):
        with pytest.raises(ModelError):
            ExponentialService(rate=0.0)

    def test_sample_mean_matches(self, rng):
        service = ExponentialService(rate=2.0)
        samples = service.sample(rng, size=50_000)
        assert np.mean(samples) == pytest.approx(0.5, rel=0.05)

    @given(positive_floats)
    def test_validate_passes(self, rate):
        ExponentialService(rate).validate()


class TestDeterministic:
    def test_moments(self):
        service = DeterministicService(3.0)
        assert service.mean == 3.0
        assert service.variance == pytest.approx(0.0)
        assert service.third_moment == pytest.approx(27.0)

    def test_sample_is_constant(self, rng):
        service = DeterministicService(1.5)
        assert service.sample(rng) == 1.5
        assert np.all(service.sample(rng, size=10) == 1.5)

    def test_invalid_value(self):
        with pytest.raises(ModelError):
            DeterministicService(0.0)


class TestShiftedExponential:
    def test_moments_match_monte_carlo(self, rng):
        service = ShiftedExponentialService(shift=1.0, rate=2.0)
        samples = service.sample(rng, size=200_000)
        assert np.mean(samples) == pytest.approx(service.mean, rel=0.02)
        assert np.mean(samples**2) == pytest.approx(service.second_moment, rel=0.03)
        assert np.mean(samples**3) == pytest.approx(service.third_moment, rel=0.05)

    def test_validation(self):
        with pytest.raises(ModelError):
            ShiftedExponentialService(shift=-1.0, rate=1.0)
        with pytest.raises(ModelError):
            ShiftedExponentialService(shift=1.0, rate=0.0)

    def test_accessors(self):
        service = ShiftedExponentialService(shift=0.5, rate=4.0)
        assert service.shift == 0.5
        assert service.exponential_rate == 4.0


class TestPareto:
    def test_requires_shape_above_three(self):
        with pytest.raises(ModelError):
            ParetoService(scale=1.0, shape=2.5)

    def test_moments_match_monte_carlo(self, rng):
        service = ParetoService(scale=1.0, shape=5.0)
        samples = service.sample(rng, size=500_000)
        assert np.mean(samples) == pytest.approx(service.mean, rel=0.02)
        assert np.mean(samples**2) == pytest.approx(service.second_moment, rel=0.05)

    def test_mean_formula(self):
        service = ParetoService(scale=2.0, shape=4.0)
        assert service.mean == pytest.approx(4.0 * 2.0 / 3.0)


class TestLogNormal:
    def test_fit_matches_requested_moments(self):
        service = LogNormalService.from_mean_variance(mean=10.0, variance=4.0)
        assert service.mean == pytest.approx(10.0)
        assert service.variance == pytest.approx(4.0)

    def test_zero_variance_fit(self):
        service = LogNormalService.from_mean_variance(mean=5.0, variance=0.0)
        assert service.mean == pytest.approx(5.0)
        assert service.log_sigma == 0.0

    def test_sampling_matches_fit(self, rng):
        service = LogNormalService.from_mean_variance(mean=3.0, variance=1.0)
        samples = service.sample(rng, size=300_000)
        assert np.mean(samples) == pytest.approx(3.0, rel=0.02)
        assert np.var(samples) == pytest.approx(1.0, rel=0.05)

    @given(
        mean=st.floats(min_value=0.1, max_value=1000.0),
        cv=st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=50)
    def test_property_fit_round_trip(self, mean, cv):
        variance = (cv * mean) ** 2
        service = LogNormalService.from_mean_variance(mean, variance)
        assert service.mean == pytest.approx(mean, rel=1e-9)
        assert service.variance == pytest.approx(variance, rel=1e-6, abs=1e-9)


class TestEmpiricalMoments:
    def test_table_iv_style_fit(self):
        service = EmpiricalMomentsService(mean=147.8462, variance=388.9872)
        assert service.mean == pytest.approx(147.8462)
        assert service.second_moment == pytest.approx(388.9872 + 147.8462**2)
        service.validate()

    def test_from_samples(self):
        data = [1.0, 2.0, 3.0, 4.0]
        service = EmpiricalMomentsService.from_samples(data)
        assert service.mean == pytest.approx(2.5)
        assert service.third_moment == pytest.approx(np.mean(np.array(data) ** 3))

    def test_from_samples_rejects_empty_and_nonpositive(self):
        with pytest.raises(ModelError):
            EmpiricalMomentsService.from_samples([])
        with pytest.raises(ModelError):
            EmpiricalMomentsService.from_samples([1.0, -2.0])

    def test_validate_rejects_inconsistent_moments(self):
        service = ExponentialService(1.0)
        # Manually broken distribution via EmpiricalMomentsService is not
        # constructible (log-normal fit enforces consistency), so check the
        # base-class validation path directly with a negative-variance fake.
        class Broken(type(service)):  # pragma: no cover - trivial shim
            @property
            def second_moment(self):
                return 0.5  # < mean^2 = 1

        with pytest.raises(ModelError):
            Broken(1.0).validate()
