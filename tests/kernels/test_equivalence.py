"""Property-based equivalence: kernels vs the legacy inline implementations.

Every kernel in :mod:`repro.kernels.queueing` replaced a private inline
implementation in the engines.  The acceptance bar of the refactor is
*bit-equality* on the default NumPy backend: this module re-states each
legacy implementation verbatim (ufunc ``accumulate``/``reduceat`` scans,
``lexsort``, fancy-index scatters) and asserts, under hypothesis-generated
and seeded workloads, that the kernel output is ``np.array_equal`` to it --
no tolerance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    fifo_departures_grouped,
    fork_join_max,
    last_access_fold,
    lindley_departures,
    multi_server_departures,
    segment_max,
    segment_sum,
    systematic_sample_positions,
    use_kernel_backend,
)


@pytest.fixture(autouse=True, scope="module")
def _pin_numpy_backend():
    # Bit-equality is the NumPy fast path's contract specifically; pin it
    # so the module stays correct when the CI kernel-backends job runs the
    # suite with REPRO_KERNEL_BACKEND=array_api_strict (the portable paths
    # reassociate cumsum/prefix-max and only promise 1e-12 agreement,
    # which tests/kernels/test_backends.py covers).
    with use_kernel_backend("numpy"):
        yield

# ----------------------------------------------------------------------
# Legacy inline implementations (the pre-kernel code, kept verbatim here
# as the reference the kernels must reproduce bit for bit).
# ----------------------------------------------------------------------


def legacy_lindley(arrivals, services):
    cumulative = np.cumsum(services)
    idle_offsets = np.maximum.accumulate(arrivals - (cumulative - services))
    return cumulative + idle_offsets


def legacy_fifo_grouped(groups, times, services, num_groups):
    order = np.lexsort((np.arange(times.size), times, groups))
    sorted_groups = groups[order]
    sorted_times = times[order]
    sorted_services = services[order]
    boundaries = np.searchsorted(sorted_groups, np.arange(num_groups + 1))
    departures_sorted = np.empty_like(sorted_times)
    for group in range(num_groups):
        low, high = int(boundaries[group]), int(boundaries[group + 1])
        if low == high:
            continue
        departures_sorted[low:high] = legacy_lindley(
            sorted_times[low:high], sorted_services[low:high]
        )
    departures = np.empty_like(departures_sorted)
    departures[order] = departures_sorted
    return departures


def legacy_multi_server(times, service, num_servers):
    departures = np.empty_like(times)
    for lane in range(num_servers):
        lane_times = times[lane::num_servers]
        lane_services = np.full(lane_times.size, float(service))
        departures[lane::num_servers] = legacy_lindley(lane_times, lane_services)
    return departures


def legacy_last_access_fold(positions):
    unique, rev_first, counts = np.unique(
        positions[::-1], return_index=True, return_counts=True
    )
    last_offsets = positions.size - 1 - rev_first
    order = np.argsort(last_offsets)
    return unique[order], counts[order], last_offsets[order]


def legacy_systematic_positions(probs, order_uniforms, grid_uniforms, size):
    num_draws, num_keys = probs.shape
    order = order_uniforms.argsort(axis=1)
    shuffled = np.take_along_axis(probs, order, axis=1)
    cumulative = np.cumsum(shuffled, axis=1)
    cumulative *= size / cumulative[:, -1:]
    grid = grid_uniforms + np.arange(size, dtype=float)
    row_base = (np.arange(num_draws, dtype=float) * (size + 1))[:, None]
    flat_cumulative = (cumulative + row_base).ravel()
    flat_grid = (grid + row_base).ravel()
    flat_positions = np.searchsorted(flat_cumulative, flat_grid, side="right")
    positions = flat_positions.reshape(num_draws, size) - (
        np.arange(num_draws)[:, None] * num_keys
    )
    np.clip(positions, 0, num_keys - 1, out=positions)
    return np.take_along_axis(order, positions, axis=1)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

seeds = st.integers(min_value=0, max_value=2**32 - 1)


def queue_inputs(seed, size, spread=100.0):
    rng = np.random.default_rng(seed)
    arrivals = np.sort(rng.random(size) * spread)
    services = rng.random(size) + 1e-3
    return arrivals, services


# ----------------------------------------------------------------------
# Bit-equality properties (NumPy backend)
# ----------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(seed=seeds, size=st.integers(min_value=1, max_value=400))
def test_lindley_bit_equal(seed, size):
    arrivals, services = queue_inputs(seed, size)
    assert np.array_equal(
        lindley_departures(arrivals, services), legacy_lindley(arrivals, services)
    )


@settings(max_examples=50, deadline=None)
@given(
    seed=seeds,
    size=st.integers(min_value=1, max_value=500),
    num_groups=st.integers(min_value=1, max_value=17),
)
def test_fifo_grouped_bit_equal(seed, size, num_groups):
    rng = np.random.default_rng(seed)
    groups = rng.integers(0, num_groups, size)
    times = rng.random(size) * 50.0  # unsorted on purpose; includes ties
    services = rng.random(size) + 1e-3
    assert np.array_equal(
        fifo_departures_grouped(groups, times, services, num_groups),
        legacy_fifo_grouped(groups, times, services, num_groups),
    )


@settings(max_examples=50, deadline=None)
@given(
    seed=seeds,
    size=st.integers(min_value=1, max_value=400),
    num_servers=st.integers(min_value=1, max_value=6),
    service=st.floats(min_value=1e-3, max_value=10.0),
)
def test_multi_server_bit_equal(seed, size, num_servers, service):
    rng = np.random.default_rng(seed)
    times = np.sort(rng.random(size) * 50.0)
    assert np.array_equal(
        multi_server_departures(times, service, num_servers),
        legacy_multi_server(times, service, num_servers),
    )


@settings(max_examples=50, deadline=None)
@given(seed=seeds, num_segments=st.integers(min_value=1, max_value=40))
def test_segment_reductions_bit_equal(seed, num_segments):
    rng = np.random.default_rng(seed)
    counts = rng.integers(1, 8, num_segments)
    values = rng.standard_normal(int(counts.sum()))
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(np.int64)
    assert np.array_equal(segment_max(values, starts), np.maximum.reduceat(values, starts))
    assert np.array_equal(segment_sum(values, starts), np.add.reduceat(values, starts))


@settings(max_examples=50, deadline=None)
@given(
    seed=seeds,
    num_segments=st.integers(min_value=1, max_value=60),
    width=st.integers(min_value=1, max_value=9),
)
def test_fork_join_max_bit_equal(seed, num_segments, width):
    rng = np.random.default_rng(seed)
    values = rng.standard_normal(num_segments * width)
    assert np.array_equal(
        fork_join_max(values, num_segments, width),
        values.reshape(num_segments, width).max(axis=1),
    )


@settings(max_examples=50, deadline=None)
@given(
    seed=seeds,
    size=st.integers(min_value=1, max_value=500),
    num_objects=st.integers(min_value=1, max_value=60),
)
def test_last_access_fold_bit_equal(seed, size, num_objects):
    rng = np.random.default_rng(seed)
    positions = rng.integers(0, num_objects, size)
    for got, expected in zip(
        last_access_fold(positions), legacy_last_access_fold(positions)
    ):
        assert np.array_equal(got, expected)


@settings(max_examples=50, deadline=None)
@given(
    seed=seeds,
    num_draws=st.integers(min_value=1, max_value=60),
    num_keys=st.integers(min_value=2, max_value=12),
    size=st.integers(min_value=1, max_value=7),
)
def test_systematic_positions_bit_equal(seed, num_draws, num_keys, size):
    if size > num_keys:
        size = num_keys
    rng = np.random.default_rng(seed)
    # Random feasible inclusion probabilities: normalise a positive row to
    # sum to `size`, then clip-renormalise until every entry is <= 1.
    probs = rng.random((num_draws, num_keys)) + 1e-6
    probs *= size / probs.sum(axis=1, keepdims=True)
    for _ in range(64):
        over = probs > 1.0
        if not over.any():
            break
        excess = (probs - np.minimum(probs, 1.0)).sum(axis=1, keepdims=True)
        headroom = np.where(over, 0.0, 1.0 - probs)
        scale = np.divide(
            excess,
            headroom.sum(axis=1, keepdims=True),
            out=np.zeros_like(excess),
            where=headroom.sum(axis=1, keepdims=True) > 0,
        )
        probs = np.minimum(probs, 1.0) + headroom * scale
    order_uniforms = rng.random((num_draws, num_keys))
    grid_uniforms = rng.random((num_draws, 1))
    got = systematic_sample_positions(probs, order_uniforms, grid_uniforms, size)
    expected = legacy_systematic_positions(probs, order_uniforms, grid_uniforms, size)
    assert np.array_equal(got, expected)


# ----------------------------------------------------------------------
# Seeded engine-level bit-equality (the batch sampler shim)
# ----------------------------------------------------------------------


def test_batch_sampler_stream_unchanged():
    """The sampler's RNG stream order survived the kernel extraction."""
    from repro.scheduling.sampling import batch_systematic_inclusion_sample

    probs = np.full((200, 12), 3 / 12.0)
    selected = batch_systematic_inclusion_sample(probs, np.random.default_rng(2016))
    rng = np.random.default_rng(2016)
    expected = legacy_systematic_positions(
        probs, rng.random((200, 12)), rng.random((200, 1)), 3
    )
    assert np.array_equal(selected, expected)


def test_replay_shims_warn_and_delegate():
    rng = np.random.default_rng(3)
    times = np.sort(rng.random(50) * 10)
    from repro.simulation import replay as legacy_module

    with pytest.warns(DeprecationWarning):
        shimmed = legacy_module.multi_server_departures(times, 0.5, 2)
    assert np.array_equal(shimmed, multi_server_departures(times, 0.5, 2))
    with pytest.warns(DeprecationWarning):
        groups = rng.integers(0, 3, 50)
        services = rng.random(50)
        shimmed = legacy_module.fifo_departures_grouped(groups, times, services, 3)
    assert np.array_equal(
        shimmed, fifo_departures_grouped(groups, times, services, 3)
    )
    with pytest.warns(DeprecationWarning):
        positions = rng.integers(0, 9, 50)
        shimmed = legacy_module.last_access_fold(positions)
    for got, expected in zip(shimmed, last_access_fold(positions)):
        assert np.array_equal(got, expected)
