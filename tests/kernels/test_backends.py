"""Backend registry plumbing and cross-backend numerical agreement.

The NumPy backend is the bit-exact reference; every other registered
backend runs the portable array-API code path and must agree with NumPy
within 1e-12 on the same inputs (the portable prefix-max/cumsum formulations
associate differently, so exact bit-equality is not required there).

``array_api_strict`` is an optional extra (``pip install repro[array-api]``);
its conformance tests skip when the module is not importable.  The CI
``kernel-backends`` job installs it and runs this file under both backends.
"""

import numpy as np
import pytest

from repro.api import (
    KERNEL_BACKENDS,
    Scenario,
    list_kernel_backends,
    register_kernel_backend,
)
from repro.exceptions import RegistryError, ScenarioError
from repro.kernels import (
    KernelBackend,
    active_kernel_backend_name,
    fifo_departures_grouped,
    fork_join_max,
    get_kernel_backend,
    last_access_fold,
    lindley_departures,
    module_available,
    multi_server_departures,
    resolve_kernel_backend,
    segment_max,
    segment_sum,
    systematic_sample_positions,
    use_kernel_backend,
)

requires_array_api_strict = pytest.mark.skipif(
    not module_available("array_api_strict"),
    reason="array_api_strict not installed (pip install repro[array-api])",
)


# ----------------------------------------------------------------------
# Registry + scenario plumbing
# ----------------------------------------------------------------------


def test_numpy_backend_always_registered():
    assert "numpy" in list_kernel_backends()
    backend = resolve_kernel_backend("numpy")
    assert backend.native_numpy
    assert backend.xp is np


def test_unknown_backend_raises_registry_error():
    with pytest.raises(RegistryError, match="kernel backend"):
        resolve_kernel_backend("definitely_not_a_backend")


def test_use_kernel_backend_nests_and_restores():
    base = active_kernel_backend_name()
    with use_kernel_backend("numpy") as backend:
        assert backend.name == "numpy"
        assert active_kernel_backend_name() == "numpy"
        with use_kernel_backend(None) as inner:
            # None re-activates the current backend (optional plumbing).
            assert inner.name == "numpy"
    assert active_kernel_backend_name() == base


def test_register_custom_backend_roundtrip():
    @register_kernel_backend("numpy_alias", description="test alias backend")
    def load_alias():
        return KernelBackend(name="numpy_alias", xp=np, native_numpy=True)

    try:
        assert "numpy_alias" in list_kernel_backends()
        with use_kernel_backend("numpy_alias"):
            assert get_kernel_backend().name == "numpy_alias"
            out = lindley_departures(np.array([0.0, 1.0]), np.array([2.0, 2.0]))
        assert np.array_equal(out, np.array([2.0, 4.0]))
        # Scenario accepts any registered backend name.
        scenario = Scenario(backend="numpy_alias", simulate=False)
        assert scenario.backend == "numpy_alias"
    finally:
        KERNEL_BACKENDS.unregister("numpy_alias")
        from repro.kernels import backends as backend_state

        backend_state._resolved.pop("numpy_alias", None)


def test_scenario_backend_validates_and_roundtrips():
    scenario = Scenario(backend="numpy")
    payload = scenario.to_dict()
    assert payload["backend"] == "numpy"
    assert Scenario.from_dict(payload) == scenario
    assert "backend=numpy" in scenario.describe()
    with pytest.raises(RegistryError):
        Scenario(backend="no_such_backend")


# ----------------------------------------------------------------------
# Cross-backend agreement (1e-12 vs the NumPy reference)
# ----------------------------------------------------------------------

TOLERANCE = 1e-12


def _workload(seed=2016, size=600, num_groups=11):
    rng = np.random.default_rng(seed)
    return {
        "arrivals": np.sort(rng.random(size) * 100.0),
        "services": rng.random(size) + 1e-3,
        "groups": rng.integers(0, num_groups, size),
        "times": rng.random(size) * 100.0,
        "num_groups": num_groups,
        "positions": rng.integers(0, 37, size),
    }


def _other_backends():
    return [name for name in list_kernel_backends() if name != "numpy"]


@pytest.mark.parametrize("backend", _other_backends() or ["numpy"])
def test_all_backends_match_numpy(backend):
    work = _workload()
    reference = {
        "lindley": lindley_departures(work["arrivals"], work["services"]),
        "grouped": fifo_departures_grouped(
            work["groups"], work["times"], work["services"], work["num_groups"]
        ),
        "multi": multi_server_departures(work["arrivals"], 0.37, 3),
    }
    with use_kernel_backend(backend):
        assert np.allclose(
            lindley_departures(work["arrivals"], work["services"]),
            reference["lindley"],
            rtol=0.0,
            atol=TOLERANCE,
        )
        assert np.allclose(
            fifo_departures_grouped(
                work["groups"], work["times"], work["services"], work["num_groups"]
            ),
            reference["grouped"],
            rtol=0.0,
            atol=TOLERANCE,
        )
        assert np.allclose(
            multi_server_departures(work["arrivals"], 0.37, 3),
            reference["multi"],
            rtol=0.0,
            atol=TOLERANCE,
        )


def test_portable_path_via_numpy_namespace():
    """The portable code path agrees with the fast path on every kernel.

    NumPy >= 2.0 implements the array-API surface the portable path uses
    (``cumulative_sum``, ``concat``, ``unique_all``, stable ``argsort``),
    so a non-native backend wrapping NumPy exercises the portable
    implementations without any optional dependency -- the same code
    ``array_api_strict``/CuPy/JAX run.
    """
    portable = KernelBackend(name="portable_numpy", xp=np, native_numpy=False)
    work = _workload()
    rng = np.random.default_rng(5)
    counts = rng.integers(1, 9, 40)
    values = rng.standard_normal(int(counts.sum()))
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(np.int64)
    fork_join_values = rng.standard_normal(200)
    probs = np.full((50, 12), 3 / 12.0)
    order_uniforms = rng.random((50, 12))
    grid_uniforms = rng.random((50, 1))

    reference = {
        "lindley": lindley_departures(work["arrivals"], work["services"]),
        "grouped": fifo_departures_grouped(
            work["groups"], work["times"], work["services"], work["num_groups"]
        ),
        "multi": multi_server_departures(work["arrivals"], 0.37, 3),
        "segment_max": segment_max(values, starts),
        "segment_sum": segment_sum(values, starts),
        "fork_join": fork_join_max(fork_join_values, 40, 5),
        "sample": systematic_sample_positions(
            probs, order_uniforms, grid_uniforms, 3
        ),
        "fold": last_access_fold(work["positions"]),
    }
    with use_kernel_backend(portable):
        assert np.allclose(
            lindley_departures(work["arrivals"], work["services"]),
            reference["lindley"], rtol=0.0, atol=TOLERANCE,
        )
        assert np.allclose(
            fifo_departures_grouped(
                work["groups"], work["times"], work["services"], work["num_groups"]
            ),
            reference["grouped"], rtol=0.0, atol=TOLERANCE,
        )
        assert np.allclose(
            multi_server_departures(work["arrivals"], 0.37, 3),
            reference["multi"], rtol=0.0, atol=TOLERANCE,
        )
        assert np.allclose(
            segment_max(values, starts),
            reference["segment_max"], rtol=0.0, atol=TOLERANCE,
        )
        assert np.allclose(
            segment_sum(values, starts),
            reference["segment_sum"], rtol=0.0, atol=TOLERANCE,
        )
        assert np.allclose(
            fork_join_max(fork_join_values, 40, 5),
            reference["fork_join"], rtol=0.0, atol=TOLERANCE,
        )
        assert np.array_equal(
            systematic_sample_positions(probs, order_uniforms, grid_uniforms, 3),
            reference["sample"],
        )
        for got, expected in zip(
            last_access_fold(work["positions"]), reference["fold"]
        ):
            assert np.array_equal(got, expected)


@requires_array_api_strict
def test_array_api_strict_full_surface():
    """Every kernel agrees with NumPy within 1e-12 under array_api_strict."""
    work = _workload()
    counts = np.random.default_rng(5).integers(1, 9, 40)
    values = np.random.default_rng(6).standard_normal(int(counts.sum()))
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(np.int64)
    probs = np.full((50, 12), 3 / 12.0)
    sample_rng = np.random.default_rng(7)
    order_uniforms = sample_rng.random((50, 12))
    grid_uniforms = sample_rng.random((50, 1))

    reference = {
        "lindley": lindley_departures(work["arrivals"], work["services"]),
        "grouped": fifo_departures_grouped(
            work["groups"], work["times"], work["services"], work["num_groups"]
        ),
        "multi": multi_server_departures(work["arrivals"], 0.37, 3),
        "segment_max": segment_max(values, starts),
        "segment_sum": segment_sum(values, starts),
        "fork_join": fork_join_max(values[:200], 40, 5),
        "sample": systematic_sample_positions(
            probs, order_uniforms, grid_uniforms, 3
        ),
        "fold": last_access_fold(work["positions"]),
    }
    with use_kernel_backend("array_api_strict"):
        assert np.allclose(
            lindley_departures(work["arrivals"], work["services"]),
            reference["lindley"], rtol=0.0, atol=TOLERANCE,
        )
        assert np.allclose(
            fifo_departures_grouped(
                work["groups"], work["times"], work["services"], work["num_groups"]
            ),
            reference["grouped"], rtol=0.0, atol=TOLERANCE,
        )
        assert np.allclose(
            multi_server_departures(work["arrivals"], 0.37, 3),
            reference["multi"], rtol=0.0, atol=TOLERANCE,
        )
        assert np.allclose(
            segment_max(values, starts),
            reference["segment_max"], rtol=0.0, atol=TOLERANCE,
        )
        assert np.allclose(
            segment_sum(values, starts),
            reference["segment_sum"], rtol=0.0, atol=TOLERANCE,
        )
        assert np.allclose(
            fork_join_max(values[:200], 40, 5),
            reference["fork_join"], rtol=0.0, atol=TOLERANCE,
        )
        # Integer outputs: selection/ordering must match exactly.
        assert np.array_equal(
            systematic_sample_positions(probs, order_uniforms, grid_uniforms, 3),
            reference["sample"],
        )
        for got, expected in zip(
            last_access_fold(work["positions"]), reference["fold"]
        ):
            assert np.array_equal(got, expected)


@requires_array_api_strict
def test_array_api_strict_scenario_run():
    """A tiny end-to-end run completes under the strict backend."""
    from repro.api import run_scenario

    result = run_scenario(
        Scenario(
            backend="array_api_strict",
            num_files=6,
            cache_capacity=4,
            horizon=500.0,
            seed=11,
        )
    )
    assert result.simulation is not None
    assert result.simulation.requests_completed >= 0
