"""Tests for the pluggable cache-policy layer (repro.policies)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import POLICIES, Scenario, get_policy, list_policies, run_scenario
from repro.api.registry import register_policy
from repro.exceptions import CacheError, RegistryError, ScenarioError
from repro.policies import (
    ARCPolicy,
    ChunkCachingPolicy,
    LFUPolicy,
    LRUPolicy,
    StaticFunctionalPolicy,
    TTLPolicy,
    create_policy,
    placement_from_trace_replay,
    round_robin_allocation,
)

FILES = {"a": 4, "b": 4, "c": 4, "d": 4}

ALL_POLICIES = [
    lambda capacity: LRUPolicy(capacity, FILES),
    lambda capacity: LFUPolicy(capacity, FILES),
    lambda capacity: ARCPolicy(capacity, FILES),
    lambda capacity: TTLPolicy(capacity, FILES, ttl=100.0),
    lambda capacity: StaticFunctionalPolicy(capacity, FILES),
]


class TestProtocol:
    @pytest.mark.parametrize("factory", ALL_POLICIES)
    def test_capacity_is_never_exceeded(self, factory):
        policy = factory(8)
        for access, file_id in enumerate("abcdabcdaabbccdd"):
            policy.observe(file_id, now=float(access))
            assert policy.used_chunks <= 8
            assert sum(policy.occupancy().values()) == policy.used_chunks

    @pytest.mark.parametrize("factory", ALL_POLICIES)
    def test_zero_capacity_yields_clean_misses(self, factory):
        policy = factory(0)
        for access, file_id in enumerate("abcabc"):
            outcome = policy.observe(file_id, now=float(access))
            assert not outcome.hit
            assert not outcome.promoted
        assert policy.stats.hit_ratio == 0.0
        assert policy.used_chunks == 0

    @pytest.mark.parametrize("factory", ALL_POLICIES)
    def test_oversized_file_takes_clean_miss_path(self, factory):
        policy = factory(8)
        policy.register_file("huge", 100)
        for _ in range(3):
            outcome = policy.observe("huge")
            assert not outcome.hit and not outcome.promoted
        assert policy.lookup("huge") == 0

    @pytest.mark.parametrize("factory", ALL_POLICIES)
    def test_eviction_reports_balance_occupancy(self, factory):
        policy = factory(8)
        inserted = policy.used_chunks  # static policies start pre-allocated
        evicted = 0
        for access, file_id in enumerate("abcdabcd"):
            outcome = policy.observe(file_id, now=float(access))
            if outcome.promoted:
                inserted += policy.footprint(file_id)
            evicted += sum(chunks for _, chunks in outcome.evicted)
        assert inserted - evicted == policy.used_chunks

    def test_unknown_file_raises(self):
        policy = LRUPolicy(8, FILES)
        with pytest.raises(CacheError):
            policy.observe("ghost")

    def test_explicit_evict_and_snapshot(self):
        policy = LRUPolicy(8, FILES)
        policy.observe("a")
        policy.observe("b")
        assert policy.occupancy() == {"a": 4, "b": 4}
        assert policy.evict("a")
        assert not policy.evict("a")
        assert policy.occupancy() == {"b": 4}

    def test_admit_does_not_count_reads(self):
        policy = LRUPolicy(8, FILES)
        policy.admit("a")
        assert policy.stats.reads == 0
        assert policy.resident("a")
        outcome = policy.observe("a")
        assert outcome.hit and policy.stats.hits == 1


class TestLRU:
    def test_recency_order_drives_eviction(self):
        policy = LRUPolicy(12, FILES)
        policy.observe("a")
        policy.observe("b")
        policy.observe("c")
        policy.observe("a")          # refresh a
        outcome = policy.observe("d")  # evicts b, the LRU entry
        assert dict(outcome.evicted) == {"b": 4}
        assert set(policy.occupancy()) == {"a", "c", "d"}

    def test_touch_epoch_matches_per_request_folding(self):
        sequential = LRUPolicy(12, FILES)
        folded = LRUPolicy(12, FILES)
        for policy in (sequential, folded):
            for file_id in ("a", "b", "c"):
                policy.observe(file_id)
        run = ["a", "c", "a", "b", "a"]
        for file_id in run:
            sequential.observe(file_id)
        # unique files ordered by last access: c (1), b (3), a (4)
        folded.touch_epoch(["c", "b", "a"], counts=[1, 1, 3], total=5)
        assert sequential.occupancy() == folded.occupancy()
        assert list(sequential._cache.keys()) == list(folded._cache.keys())
        assert sequential.stats.hits == folded.stats.hits

    def test_replication_inflates_footprint(self):
        policy = LRUPolicy(8, {"a": 4, "b": 4}, replication=2)
        policy.observe("a")
        outcome = policy.observe("b")  # 8 chunks each replicated -> a evicted
        assert dict(outcome.evicted) == {"a": 4}


class TestLFU:
    def test_frequency_beats_recency(self):
        policy = LFUPolicy(8, FILES)
        policy.observe("a")
        policy.observe("a")
        policy.observe("a")
        policy.observe("b")
        outcome = policy.observe("c")  # b has the lowest count
        assert dict(outcome.evicted) == {"b": 4}
        assert policy.resident("a")

    def test_tie_breaks_by_recency(self):
        policy = LFUPolicy(8, FILES)
        policy.observe("a")
        policy.observe("b")  # same count; a is older
        outcome = policy.observe("c")
        assert dict(outcome.evicted) == {"a": 4}


class TestARC:
    def test_ghost_hit_adapts_and_promotes_to_t2(self):
        policy = ARCPolicy(8, FILES)
        policy.observe("a")
        policy.observe("b")
        policy.observe("c")          # evicts a into the B1 ghost list
        outcome = policy.observe("a")  # ghost hit: re-promoted (to T2)
        assert not outcome.hit
        assert outcome.promoted
        assert policy.resident("a")

    def test_repeated_access_moves_to_t2(self):
        policy = ARCPolicy(16, FILES)
        policy.observe("a")
        policy.observe("a")
        assert "a" in policy._t2  # noqa: SLF001 - structural assertion


class TestTTL:
    def test_entries_expire(self):
        policy = TTLPolicy(16, FILES, ttl=10.0)
        policy.observe("a", now=0.0)
        assert policy.resident("a")
        outcome = policy.observe("b", now=11.0)
        assert ("a", 4) in outcome.evicted
        assert not policy.resident("a")

    def test_next_event_time_tracks_earliest_expiry(self):
        policy = TTLPolicy(16, FILES, ttl=10.0)
        assert policy.next_event_time() == math.inf
        policy.observe("a", now=2.0)
        assert policy.next_event_time() == pytest.approx(12.0)

    def test_infinite_ttl_degenerates_to_fifo(self):
        policy = TTLPolicy(8, FILES)
        policy.observe("a", now=0.0)
        policy.observe("b", now=1.0)
        policy.observe("a", now=2.0)   # hit; FIFO order unchanged
        outcome = policy.observe("c", now=3.0)
        assert dict(outcome.evicted) == {"a": 4}

    def test_refresh_on_hit_slides_the_window(self):
        policy = TTLPolicy(16, FILES, ttl=10.0, refresh_on_hit=True)
        policy.observe("a", now=0.0)
        policy.observe("a", now=8.0)   # refresh -> expires at 18
        policy.observe("b", now=12.0)
        assert policy.resident("a")

    def test_invalid_ttl_rejected(self):
        with pytest.raises(CacheError):
            TTLPolicy(8, FILES, ttl=0.0)


class TestStaticFunctional:
    def test_round_robin_allocation_spreads_chunks(self):
        allocation = round_robin_allocation({"a": 4, "b": 4, "c": 4}, 6)
        assert sum(allocation.values()) == 6
        assert max(allocation.values()) - min(allocation.values()) <= 1

    def test_partial_allocation_counts_cached_chunks_on_miss(self):
        policy = StaticFunctionalPolicy(6, {"a": 4, "b": 4, "c": 4})
        outcome = policy.observe("a")
        assert not outcome.hit
        assert outcome.cached_chunks == 2
        assert not outcome.promoted and not outcome.evicted

    def test_full_allocation_hits(self):
        policy = StaticFunctionalPolicy(8, {"a": 4, "b": 4}, allocation={"a": 4})
        assert policy.observe("a").hit
        assert not policy.observe("b").hit

    def test_allocation_validation(self):
        with pytest.raises(CacheError):
            StaticFunctionalPolicy(8, {"a": 4}, allocation={"a": 5})
        with pytest.raises(CacheError):
            StaticFunctionalPolicy(4, {"a": 4, "b": 4}, allocation={"a": 4, "b": 4})


class TestPropertyInvariants:
    @given(
        accesses=st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=150),
        capacity=st.integers(min_value=0, max_value=24),
        which=st.sampled_from(["lru", "lfu", "arc", "ttl"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_capacity_and_accounting_invariants(self, accesses, capacity, which):
        files = {f"f{index}": 3 for index in range(8)}
        policy = create_policy(which, capacity, files)
        inserted = 0
        evicted = 0
        for step, index in enumerate(accesses):
            outcome = policy.observe(f"f{index}", now=float(step))
            if outcome.promoted:
                inserted += 3
            evicted += sum(chunks for _, chunks in outcome.evicted)
            assert policy.used_chunks <= max(capacity, 0)
        assert inserted - evicted == policy.used_chunks
        assert policy.stats.reads == len(accesses)
        assert 0.0 <= policy.stats.hit_ratio <= 1.0


class TestRegistryIntegration:
    def test_builtin_policies_registered(self):
        assert {"lru", "lfu", "arc", "ttl", "functional_static"} <= set(list_policies())

    def test_get_policy_spec(self):
        spec = get_policy("lru")
        assert spec.name == "lru"
        assert spec.description
        assert isinstance(spec.factory(8, FILES), ChunkCachingPolicy)

    def test_create_policy_forwards_params(self):
        policy = create_policy("ttl", 8, FILES, ttl=5.0)
        policy.observe("a", now=0.0)
        assert policy.next_event_time() == pytest.approx(5.0)

    def test_register_policy_plugin_round_trip(self):
        @register_policy("test_only_policy", description="plugin stub")
        class Plugin(LRUPolicy):
            pass

        try:
            assert "test_only_policy" in POLICIES
            scenario = Scenario(policy="test_only_policy")
            assert scenario.uses_cache_policy
        finally:
            POLICIES.unregister("test_only_policy")
        with pytest.raises(RegistryError):
            Scenario(policy="test_only_policy")


class TestScenarioIntegration:
    @pytest.mark.parametrize("name", ["lru", "lfu", "ttl", "functional_static", "arc"])
    def test_policy_scenarios_run_end_to_end(self, name):
        result = run_scenario(
            Scenario(
                num_files=12,
                cache_capacity=8,
                policy=name,
                simulate=True,
                horizon=2000.0,
            )
        )
        assert result.optimization is None
        assert 0 < result.placement.total_cached_chunks <= 8
        assert result.simulated_mean_latency is not None
        assert "policy" in result.timings

    def test_policy_scenarios_are_seed_deterministic(self):
        first = run_scenario(Scenario(num_files=15, cache_capacity=10, policy="lru", simulate=False))
        second = run_scenario(Scenario(num_files=15, cache_capacity=10, policy="lru", simulate=False))
        assert first.placement.cached_chunks() == second.placement.cached_chunks()

    def test_policy_params_reach_the_policy(self):
        result = run_scenario(
            Scenario(
                num_files=12,
                cache_capacity=8,
                policy="ttl",
                policy_params={"ttl": 1e12},
                simulate=False,
            )
        )
        assert result.placement.total_cached_chunks > 0

    def test_policy_params_rejected_for_non_policies(self):
        with pytest.raises(ScenarioError, match="policy_params"):
            Scenario(policy="optimal", policy_params={"ttl": 1.0})
        with pytest.raises(ScenarioError, match="policy_params"):
            Scenario(policy="no_cache", policy_params={"ttl": 1.0})

    def test_unknown_policy_error_lists_both_registries(self):
        with pytest.raises(RegistryError, match="unknown baseline or cache policy") as excinfo:
            Scenario(policy="belady")
        message = str(excinfo.value)
        assert "no_cache" in message and "lru" in message

    def test_scenario_dict_round_trip_with_policy(self):
        scenario = Scenario(policy="ttl", policy_params={"ttl": 9.0})
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert rebuilt == scenario


class TestPlacementBridge:
    def test_snapshot_respects_capacity(self, small_model):
        policy = LRUPolicy(
            small_model.cache_capacity,
            {spec.file_id: spec.k for spec in small_model.files},
        )
        placement = placement_from_trace_replay(small_model, policy, seed=3)
        placement.validate_against(small_model)
        assert placement.total_cached_chunks <= small_model.cache_capacity
