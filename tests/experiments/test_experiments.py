"""Integration tests: every experiment runs through the declarative registry
(in reduced form) and reproduces the qualitative shape the paper reports."""

from __future__ import annotations

import json

import pytest

from repro.api import get_experiment
from repro.experiments import fig5_evolution, fig9_service_cdf
from repro.experiments.runner import (
    EXPERIMENTS,
    build_parser,
    format_listing,
    main,
    run_experiment,
)


class TestFig3Convergence:
    def test_converges_within_twenty_iterations(self):
        spec = get_experiment("fig3")
        result = spec.run(
            scale="fast", cache_sizes=(10, 20, 30), num_files=30, tolerance=0.01
        )
        assert len(result.curves) == 3
        assert result.max_iterations() < 20
        for curve in result.curves:
            assert curve.converged
            trace = curve.objective_trace
            assert all(b <= a + 1e-6 for a, b in zip(trace, trace[1:]))
        text = spec.format(result)
        assert "Fig. 3" in text

    def test_larger_cache_reaches_lower_latency(self):
        result = get_experiment("fig3").run(
            scale="fast", cache_sizes=(10, 40), num_files=30
        )
        assert result.curves[1].final_latency <= result.curves[0].final_latency + 1e-6


class TestFig4CacheSize:
    def test_latency_decreases_convexly_to_zero(self):
        spec = get_experiment("fig4")
        result = spec.run(scale="fast", cache_sizes=(0, 30, 60, 90, 120), num_files=30)
        assert result.is_nonincreasing(tolerance=1e-3)
        # Full cache (4 chunks per file) drives the latency bound to ~0.
        assert result.points[-1].latency == pytest.approx(0.0, abs=1e-3)
        assert result.points[0].latency > 1.0
        text = spec.format(result)
        assert "Fig. 4" in text


class TestFig5Evolution:
    def test_cache_is_used_and_tracks_bins(self):
        spec = get_experiment("fig5")
        result = spec.run(scale="fast", cache_capacity=10)
        assert len(result.cache_per_bin) == 3
        for bin_content in result.cache_per_bin:
            total = sum(bin_content.values())
            assert 0 < total <= 10
        text = spec.format(result)
        assert "bin" in text
        hottest = fig5_evolution.hottest_files_per_bin(result, top=2)
        assert len(hottest) == 3

    def test_per_bin_simulation_cross_check(self):
        result = get_experiment("fig5").run(
            scale="fast", simulate_bins=True, horizon=2000.0
        )
        assert len(result.simulated_latency_per_bin) == 3
        for simulated in result.simulated_latency_per_bin:
            assert simulated > 0.0
        assert "simulated latency per bin" in get_experiment("fig5").format(result)


class TestFig6Placement:
    def test_allocation_shifts_with_arrival_rate(self):
        spec = get_experiment("fig6")
        result = spec.run(
            scale="fast",
            sweep_rates=(0.0001250, 0.0001786, 0.0002778),
            cache_capacity=10,
        )
        first_two = result.first_two_series()
        last_six = result.last_six_series()
        # At the low end the lightly-loaded first two files get little cache;
        # at the high end they displace the last six files' chunks.
        assert first_two[0] <= first_two[-1]
        assert first_two[-1] > 0
        assert last_six[0] >= last_six[-1]
        text = spec.format(result)
        assert "Fig. 6" in text

    def test_simulated_latency_recorded_when_requested(self):
        result = get_experiment("fig6").run(
            scale="fast",
            sweep_rates=(0.0001250,),
            simulate=True,
            horizon=2000.0,
        )
        assert result.points[0].simulated_latency is not None
        assert result.points[0].simulated_latency > 0.0


class TestFig7Scheduling:
    def test_cache_fraction_near_capacity_ratio(self):
        spec = get_experiment("fig7")
        result = spec.run(
            scale="fast",
            per_object_rates=(0.0225,),
            num_objects=120,
            cache_capacity_chunks=150,
            time_bin_length=100.0,
        )
        series = result.series[0]
        assert len(series.slots) == 20
        assert series.cache_fraction == pytest.approx(
            series.expected_cache_fraction, abs=0.08
        )
        assert spec.format(result).startswith("Fig. 7")


class TestFig9ServiceCdf:
    def test_sampled_moments_match_table_iv(self):
        spec = get_experiment("fig9")
        result = spec.run(scale="fast", samples_per_size=4000)
        for cdf in result.cdfs:
            assert cdf.sample_mean_ms == pytest.approx(cdf.table_mean_ms, rel=0.05)
            assert cdf.cdf_at(cdf.percentile(95)) >= 0.94
        rows = result.table_iv_rows()
        assert {row["chunk_size_mb"] for row in rows} == {1, 4, 16, 64, 256}
        assert "Table IV" in spec.format(result)

    def test_simulator_backed_sampling_matches_table(self):
        # The full emulated read path (either engine) must reproduce the
        # Table-IV service moments at low utilization.
        result = get_experiment("fig9").run(
            scale="fast",
            chunk_sizes_mb=(4, 64),
            samples_per_size=2000,
            via_simulator=True,
        )
        for cdf in result.cdfs:
            assert cdf.sample_mean_ms == pytest.approx(cdf.table_mean_ms, rel=0.08)


class TestTables:
    def test_tables_regeneration(self):
        spec = get_experiment("tables")
        result = spec.run(scale="fast", samples=3000)
        assert len(result.table_iv) == 5
        assert len(result.table_v) == 5
        for row in result.table_iv:
            assert row.emulated_mean_ms == pytest.approx(row.paper_mean_ms, rel=0.06)
        for row in result.table_v:
            assert row.emulated_latency_ms == pytest.approx(row.paper_latency_ms)
        text = spec.format(result)
        assert "Table I" in text and "Table V" in text


class TestFig10ObjectSizes:
    def test_optimal_beats_lru_and_gap_grows_with_size(self):
        spec = get_experiment("fig10")
        result = spec.run(
            scale="fast",
            object_sizes_mb=(16, 64),
            num_objects=300,
            duration_s=300.0,
            rate_scale=3.0,
        )
        assert len(result.comparisons) == 2
        for comparison in result.comparisons:
            assert comparison.optimal_latency_ms <= comparison.baseline_latency_ms * 1.05
        # Latency grows with object size in both configurations.
        assert (
            result.comparisons[1].optimal_latency_ms
            > result.comparisons[0].optimal_latency_ms
        )
        assert "Fig. 10" in spec.format(result)


class TestFig11ArrivalRates:
    def test_latency_grows_with_load_and_optimal_wins(self):
        spec = get_experiment("fig11")
        result = spec.run(
            scale="fast",
            aggregate_rates=(0.5, 4.0),
            num_objects=400,
            duration_s=300.0,
        )
        assert len(result.comparisons) == 2
        low, high = result.comparisons
        assert high.baseline_latency_ms > low.baseline_latency_ms
        assert high.optimal_latency_ms <= high.baseline_latency_ms
        assert result.mean_improvement() > 0.0
        assert "Fig. 11" in spec.format(result)


class TestRunner:
    ALL_NAMES = {
        "fig3", "fig4", "fig5", "fig6", "fig7", "fig9", "fig10", "fig11",
        "fig12", "fig13", "fig14", "tables", "scenario",
    }

    def test_registry_covers_all_figures_and_tables(self):
        from repro.api import list_experiments

        assert set(list_experiments()) == self.ALL_NAMES
        assert set(EXPERIMENTS) == self.ALL_NAMES

    def test_parser(self):
        parser = build_parser()
        args = parser.parse_args(["fig9", "--scale", "fast"])
        assert args.experiment == "fig9"
        assert args.scale == "fast"
        assert args.engine is None and args.seed is None
        args = parser.parse_args(
            ["fig7", "--scale", "fast", "--engine", "event", "--seed", "7", "--json"]
        )
        assert args.engine == "event"
        assert args.seed == 7
        assert args.as_json

    def test_run_experiment_fast(self):
        report = run_experiment("fig9", "fast")
        assert "Table IV" in report

    def test_run_experiment_json(self):
        report = run_experiment("tables", "fast", as_json=True)
        payload = json.loads(report)
        assert payload["experiment"] == "tables"
        assert payload["scale"] == "fast"
        assert len(payload["result"]["table_iv"]) == 5

    def test_seed_override_changes_fig9_samples(self):
        spec = get_experiment("fig9")
        base = spec.run(scale="fast", samples_per_size=500)
        reseeded = spec.run(scale="fast", samples_per_size=500, seed=7)
        repeat = spec.run(scale="fast", samples_per_size=500)
        assert base.cdfs[0].sample_mean_ms != reseeded.cdfs[0].sample_mean_ms
        assert base.cdfs[0].sample_mean_ms == repeat.cdfs[0].sample_mean_ms

    def test_cli_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in sorted(self.ALL_NAMES):
            assert name in out
        for section in ("solvers", "engines", "baselines", "workloads"):
            assert f"Registered {section}:" in out

    def test_cli_json_run(self, capsys):
        assert main(["fig9", "--scale", "fast", "--json", "--seed", "11"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "fig9"
        assert payload["seed"] == 11

    def test_cli_requires_experiment_or_list(self):
        with pytest.raises(SystemExit):
            main([])

    def test_legacy_compat_mapping_runs(self):
        description, runner = EXPERIMENTS["tables"]
        assert "Tables" in description
        assert "Table IV" in runner("fast")

    def test_listing_renders(self):
        text = format_listing()
        assert "Registered experiments:" in text
        assert "fig11" in text


class TestDeprecatedDirectCalls:
    def test_direct_run_call_warns_but_matches_registry(self):
        spec = get_experiment("fig9")
        via_registry = spec.run(scale="fast", samples_per_size=800)
        with pytest.warns(DeprecationWarning, match="fig9_service_cdf.run"):
            legacy = fig9_service_cdf.run(samples_per_size=800)
        # Same seed, same code path: the shim only adds the warning.
        assert [cdf.sample_mean_ms for cdf in legacy.cdfs] == [
            cdf.sample_mean_ms for cdf in via_registry.cdfs
        ]
