"""Integration tests: every experiment module runs (in reduced form) and
reproduces the qualitative shape the paper reports."""

from __future__ import annotations

import pytest

from repro.experiments import (
    fig3_convergence,
    fig4_cache_size,
    fig5_evolution,
    fig6_placement,
    fig7_scheduling,
    fig9_service_cdf,
    fig10_object_sizes,
    fig11_arrival_rates,
    tables,
)
from repro.experiments.runner import EXPERIMENTS, build_parser, run_experiment


class TestFig3Convergence:
    def test_converges_within_twenty_iterations(self):
        result = fig3_convergence.run(
            cache_sizes=(10, 20, 30), num_files=30, tolerance=0.01
        )
        assert len(result.curves) == 3
        assert result.max_iterations() < 20
        for curve in result.curves:
            assert curve.converged
            trace = curve.objective_trace
            assert all(b <= a + 1e-6 for a, b in zip(trace, trace[1:]))
        text = fig3_convergence.format_result(result)
        assert "Fig. 3" in text

    def test_larger_cache_reaches_lower_latency(self):
        result = fig3_convergence.run(cache_sizes=(10, 40), num_files=30)
        assert result.curves[1].final_latency <= result.curves[0].final_latency + 1e-6


class TestFig4CacheSize:
    def test_latency_decreases_convexly_to_zero(self):
        result = fig4_cache_size.run(
            cache_sizes=(0, 30, 60, 90, 120), num_files=30
        )
        assert result.is_nonincreasing(tolerance=1e-3)
        # Full cache (4 chunks per file) drives the latency bound to ~0.
        assert result.points[-1].latency == pytest.approx(0.0, abs=1e-3)
        assert result.points[0].latency > 1.0
        text = fig4_cache_size.format_result(result)
        assert "Fig. 4" in text


class TestFig5Evolution:
    def test_cache_is_used_and_tracks_bins(self):
        result = fig5_evolution.run(cache_capacity=10)
        assert len(result.cache_per_bin) == 3
        for bin_content in result.cache_per_bin:
            total = sum(bin_content.values())
            assert 0 < total <= 10
        text = fig5_evolution.format_result(result)
        assert "bin" in text
        hottest = fig5_evolution.hottest_files_per_bin(result, top=2)
        assert len(hottest) == 3


class TestFig6Placement:
    def test_allocation_shifts_with_arrival_rate(self):
        result = fig6_placement.run(
            sweep_rates=(0.0001250, 0.0001786, 0.0002778), cache_capacity=10
        )
        first_two = result.first_two_series()
        last_six = result.last_six_series()
        # At the low end the lightly-loaded first two files get little cache;
        # at the high end they displace the last six files' chunks.
        assert first_two[0] <= first_two[-1]
        assert first_two[-1] > 0
        assert last_six[0] >= last_six[-1]
        text = fig6_placement.format_result(result)
        assert "Fig. 6" in text


class TestFig7Scheduling:
    def test_cache_fraction_near_capacity_ratio(self):
        result = fig7_scheduling.run(
            per_object_rates=(0.0225,),
            num_objects=120,
            cache_capacity_chunks=150,
            time_bin_length=100.0,
        )
        series = result.series[0]
        assert len(series.slots) == 20
        assert series.cache_fraction == pytest.approx(
            series.expected_cache_fraction, abs=0.08
        )
        assert fig7_scheduling.format_result(result).startswith("Fig. 7")


class TestFig9ServiceCdf:
    def test_sampled_moments_match_table_iv(self):
        result = fig9_service_cdf.run(samples_per_size=4000)
        for cdf in result.cdfs:
            assert cdf.sample_mean_ms == pytest.approx(cdf.table_mean_ms, rel=0.05)
            assert cdf.cdf_at(cdf.percentile(95)) >= 0.94
        rows = result.table_iv_rows()
        assert {row["chunk_size_mb"] for row in rows} == {1, 4, 16, 64, 256}
        assert "Table IV" in fig9_service_cdf.format_result(result)


class TestTables:
    def test_tables_regeneration(self):
        result = tables.run(samples=3000)
        assert len(result.table_iv) == 5
        assert len(result.table_v) == 5
        for row in result.table_iv:
            assert row.emulated_mean_ms == pytest.approx(row.paper_mean_ms, rel=0.06)
        for row in result.table_v:
            assert row.emulated_latency_ms == pytest.approx(row.paper_latency_ms)
        text = tables.format_result(result)
        assert "Table I" in text and "Table V" in text


class TestFig10ObjectSizes:
    def test_optimal_beats_lru_and_gap_grows_with_size(self):
        result = fig10_object_sizes.run(
            object_sizes_mb=(16, 64),
            num_objects=300,
            duration_s=300.0,
            rate_scale=3.0,
        )
        assert len(result.comparisons) == 2
        for comparison in result.comparisons:
            assert comparison.optimal_latency_ms <= comparison.baseline_latency_ms * 1.05
        # Latency grows with object size in both configurations.
        assert (
            result.comparisons[1].optimal_latency_ms
            > result.comparisons[0].optimal_latency_ms
        )
        assert "Fig. 10" in fig10_object_sizes.format_result(result)


class TestFig11ArrivalRates:
    def test_latency_grows_with_load_and_optimal_wins(self):
        result = fig11_arrival_rates.run(
            aggregate_rates=(0.5, 4.0),
            num_objects=400,
            duration_s=300.0,
        )
        assert len(result.comparisons) == 2
        low, high = result.comparisons
        assert high.baseline_latency_ms > low.baseline_latency_ms
        assert high.optimal_latency_ms <= high.baseline_latency_ms
        assert result.mean_improvement() > 0.0
        assert "Fig. 11" in fig11_arrival_rates.format_result(result)


class TestRunner:
    def test_registry_covers_all_figures_and_tables(self):
        assert set(EXPERIMENTS) == {
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig9", "fig10", "fig11", "tables",
        }

    def test_parser(self):
        parser = build_parser()
        args = parser.parse_args(["fig9", "--scale", "fast"])
        assert args.experiment == "fig9"
        assert args.scale == "fast"

    def test_run_experiment_fast(self):
        report = run_experiment("fig9", "fast")
        assert "Table IV" in report
