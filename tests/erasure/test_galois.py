"""Tests for GF(2^8) arithmetic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure.galois import (
    GF256,
    polynomial_evaluate,
    vandermonde_row,
)
from repro.exceptions import GaloisFieldError

elements = st.integers(min_value=0, max_value=255)
nonzero_elements = st.integers(min_value=1, max_value=255)


class TestBasicOperations:
    def test_addition_is_xor(self):
        assert GF256.add(0b1010, 0b0110) == 0b1100

    def test_addition_identity(self):
        assert GF256.add(57, 0) == 57

    def test_subtraction_equals_addition(self):
        assert GF256.subtract(200, 77) == GF256.add(200, 77)

    def test_multiplication_by_zero(self):
        assert GF256.multiply(0, 123) == 0
        assert GF256.multiply(123, 0) == 0

    def test_multiplication_by_one(self):
        for value in (1, 17, 255):
            assert GF256.multiply(value, 1) == value

    def test_known_product(self):
        # 2 * 128 wraps through the primitive polynomial 0x11D.
        assert GF256.multiply(2, 128) == (0x100 ^ 0x11D)

    def test_division_by_zero_raises(self):
        with pytest.raises(GaloisFieldError):
            GF256.divide(5, 0)

    def test_inverse_of_zero_raises(self):
        with pytest.raises(GaloisFieldError):
            GF256.inverse(0)

    def test_out_of_range_rejected(self):
        with pytest.raises(GaloisFieldError):
            GF256.add(256, 1)
        with pytest.raises(GaloisFieldError):
            GF256.multiply(-1, 1)

    def test_power_zero_exponent(self):
        assert GF256.power(37, 0) == 1
        assert GF256.power(0, 0) == 1

    def test_power_negative_exponent(self):
        value = 91
        assert GF256.multiply(GF256.power(value, -1), value) == 1

    def test_power_of_zero_negative_raises(self):
        with pytest.raises(GaloisFieldError):
            GF256.power(0, -1)

    def test_dot_product_length_mismatch(self):
        with pytest.raises(GaloisFieldError):
            GF256.dot([1, 2], [3])

    def test_dot_product_value(self):
        # 1*5 + 2*6 + 3*7 in GF(256)
        expected = GF256.multiply(1, 5) ^ GF256.multiply(2, 6) ^ GF256.multiply(3, 7)
        assert GF256.dot([1, 2, 3], [5, 6, 7]) == expected


class TestFieldAxioms:
    @given(elements, elements)
    def test_addition_commutes(self, a, b):
        assert GF256.add(a, b) == GF256.add(b, a)

    @given(elements, elements)
    def test_multiplication_commutes(self, a, b):
        assert GF256.multiply(a, b) == GF256.multiply(b, a)

    @given(elements, elements, elements)
    def test_multiplication_associates(self, a, b, c):
        left = GF256.multiply(GF256.multiply(a, b), c)
        right = GF256.multiply(a, GF256.multiply(b, c))
        assert left == right

    @given(elements, elements, elements)
    def test_distributive_law(self, a, b, c):
        left = GF256.multiply(a, GF256.add(b, c))
        right = GF256.add(GF256.multiply(a, b), GF256.multiply(a, c))
        assert left == right

    @given(elements)
    def test_additive_inverse_is_self(self, a):
        assert GF256.add(a, a) == 0

    @given(nonzero_elements)
    def test_multiplicative_inverse(self, a):
        assert GF256.multiply(a, GF256.inverse(a)) == 1

    @given(nonzero_elements, nonzero_elements)
    def test_division_inverts_multiplication(self, a, b):
        product = GF256.multiply(a, b)
        assert GF256.divide(product, b) == a

    @given(nonzero_elements, st.integers(min_value=0, max_value=20))
    def test_power_matches_repeated_multiplication(self, base, exponent):
        expected = 1
        for _ in range(exponent):
            expected = GF256.multiply(expected, base)
        assert GF256.power(base, exponent) == expected


class TestVectorised:
    def test_scalar_vector_multiply_matches_scalar(self, rng):
        vector = rng.integers(0, 256, size=64, dtype=np.uint8)
        scalar = 173
        result = GF256.multiply_scalar_vector(scalar, vector)
        expected = [GF256.multiply(scalar, int(v)) for v in vector]
        assert result.tolist() == expected

    def test_scalar_zero_gives_zero_vector(self, rng):
        vector = rng.integers(0, 256, size=16, dtype=np.uint8)
        assert not GF256.multiply_scalar_vector(0, vector).any()

    def test_add_vectors_shape_mismatch(self):
        with pytest.raises(GaloisFieldError):
            GF256.add_vectors(np.zeros(3, dtype=np.uint8), np.zeros(4, dtype=np.uint8))

    def test_matmul_matches_elementwise(self, rng):
        matrix = rng.integers(0, 256, size=(3, 4), dtype=np.uint8)
        data = rng.integers(0, 256, size=(4, 10), dtype=np.uint8)
        result = GF256.matmul(matrix, data)
        for i in range(3):
            for col in range(10):
                expected = 0
                for j in range(4):
                    expected ^= GF256.multiply(int(matrix[i, j]), int(data[j, col]))
                assert result[i, col] == expected

    def test_matmul_dimension_mismatch(self):
        with pytest.raises(GaloisFieldError):
            GF256.matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((4, 5), dtype=np.uint8))


class TestPolynomials:
    def test_polynomial_at_zero_is_constant(self):
        assert polynomial_evaluate([7, 3, 9], 0) == 7

    @given(st.lists(elements, min_size=1, max_size=6), elements)
    @settings(max_examples=50)
    def test_horner_matches_direct_evaluation(self, coefficients, x):
        direct = 0
        for power, coefficient in enumerate(coefficients):
            direct ^= GF256.multiply(coefficient, GF256.power(x, power)) if x or power == 0 else 0
        # For x == 0 only the constant term contributes.
        if x == 0:
            direct = coefficients[0]
        assert polynomial_evaluate(coefficients, x) == direct

    def test_vandermonde_row(self):
        row = vandermonde_row(3, 4)
        assert row == [1, 3, GF256.multiply(3, 3), GF256.power(3, 3)]
