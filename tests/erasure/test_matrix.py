"""Tests for GF(2^8) matrices."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure.galois import GF256
from repro.erasure.matrix import GFMatrix
from repro.exceptions import GaloisFieldError


class TestConstruction:
    def test_rejects_non_2d(self):
        with pytest.raises(GaloisFieldError):
            GFMatrix([1, 2, 3])

    def test_rejects_out_of_range(self):
        with pytest.raises(GaloisFieldError):
            GFMatrix([[256]])

    def test_identity(self):
        identity = GFMatrix.identity(4)
        assert identity.shape == (4, 4)
        assert identity.rank() == 4

    def test_zeros(self):
        zeros = GFMatrix.zeros(2, 3)
        assert zeros.shape == (2, 3)
        assert zeros.rank() == 0

    def test_vandermonde_row_limit(self):
        with pytest.raises(GaloisFieldError):
            GFMatrix.vandermonde(300, 4)

    def test_cauchy_size_limit(self):
        with pytest.raises(GaloisFieldError):
            GFMatrix.cauchy(200, 100)

    def test_equality_and_copy(self):
        matrix = GFMatrix([[1, 2], [3, 4]])
        assert matrix == matrix.copy()
        assert matrix != GFMatrix([[1, 2], [3, 5]])


class TestLinearAlgebra:
    def test_multiply_identity(self):
        matrix = GFMatrix([[5, 7, 1], [2, 9, 4], [8, 3, 6]])
        assert matrix.multiply(GFMatrix.identity(3)) == matrix

    def test_multiply_shape_mismatch(self):
        with pytest.raises(GaloisFieldError):
            GFMatrix.identity(2).multiply(GFMatrix.identity(3))

    def test_multiply_vector(self):
        matrix = GFMatrix([[1, 2], [3, 4]])
        result = matrix.multiply_vector([5, 6])
        assert result[0] == GF256.multiply(1, 5) ^ GF256.multiply(2, 6)
        assert result[1] == GF256.multiply(3, 5) ^ GF256.multiply(4, 6)

    def test_inverse_round_trip(self, rng):
        matrix = GFMatrix.cauchy(4, 4)
        product = matrix.multiply(matrix.inverse())
        assert product == GFMatrix.identity(4)

    def test_inverse_of_singular_raises(self):
        singular = GFMatrix([[1, 2], [1, 2]])
        with pytest.raises(GaloisFieldError):
            singular.inverse()

    def test_inverse_requires_square(self):
        with pytest.raises(GaloisFieldError):
            GFMatrix.zeros(2, 3).inverse()

    def test_rank_of_duplicated_rows(self):
        matrix = GFMatrix([[1, 2, 3], [1, 2, 3], [4, 5, 6]])
        assert matrix.rank() == 2

    def test_is_invertible(self):
        assert GFMatrix.identity(3).is_invertible()
        assert not GFMatrix([[1, 2], [1, 2]]).is_invertible()

    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_vandermonde_every_k_rows_invertible(self, k):
        matrix = GFMatrix.vandermonde(k + 3, k)
        assert matrix.every_k_rows_invertible(k)

    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_cauchy_every_k_rows_invertible(self, k):
        matrix = GFMatrix.cauchy(k + 3, k)
        assert matrix.every_k_rows_invertible(k)

    def test_every_k_rows_requires_matching_columns(self):
        with pytest.raises(GaloisFieldError):
            GFMatrix.identity(3).every_k_rows_invertible(2)

    def test_submatrix(self):
        matrix = GFMatrix([[1, 2], [3, 4], [5, 6]])
        sub = matrix.submatrix([2, 0])
        assert sub == GFMatrix([[5, 6], [1, 2]])

    def test_random_invertible_round_trip(self, rng):
        while True:
            data = rng.integers(0, 256, size=(5, 5), dtype=np.uint8)
            matrix = GFMatrix(data)
            if matrix.is_invertible():
                break
        assert matrix.multiply(matrix.inverse()) == GFMatrix.identity(5)
