"""Tests for MDS verification and functional cache chunk construction."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure.functional import (
    CachedFile,
    FunctionalCacheCoder,
    exact_cache_chunks,
    functional_vs_exact_candidate_nodes,
)
from repro.erasure.matrix import GFMatrix
from repro.erasure.mds import (
    code_is_mds,
    is_mds,
    minimum_distance,
    singleton_bound,
    verify_recoverability,
)
from repro.erasure.reed_solomon import ReedSolomonCode
from repro.exceptions import ErasureCodeError, InsufficientChunksError


class TestMdsChecks:
    def test_identity_plus_cauchy_is_mds(self):
        code = ReedSolomonCode(n=6, k=3)
        assert code_is_mds(code, extension=0)
        assert code_is_mds(code, extension=3)

    def test_is_mds_rejects_wrong_columns(self):
        with pytest.raises(ErasureCodeError):
            is_mds(GFMatrix.identity(3), 2)

    def test_non_mds_detected(self):
        generator = GFMatrix([[1, 0], [0, 1], [1, 0]])  # rows 0 and 2 equal
        assert not is_mds(generator, 2)

    def test_extension_bounds_checked(self):
        code = ReedSolomonCode(n=5, k=3)
        with pytest.raises(ErasureCodeError):
            code_is_mds(code, extension=4)

    def test_minimum_distance_meets_singleton(self):
        code = ReedSolomonCode(n=6, k=3)
        generator = code.generator.submatrix(range(6))
        assert minimum_distance(generator, 3) == singleton_bound(6, 3)

    def test_singleton_bound_validation(self):
        with pytest.raises(ErasureCodeError):
            singleton_bound(2, 3)

    def test_verify_recoverability_operational(self):
        code = ReedSolomonCode(n=5, k=3)
        payload = b"all k-subsets must decode this payload"
        chunks = code.encode(payload)
        assert verify_recoverability(code, payload, chunks)

    def test_verify_recoverability_detects_corruption(self):
        code = ReedSolomonCode(n=5, k=3)
        payload = b"all k-subsets must decode this payload"
        chunks = code.encode(payload)
        corrupted = list(chunks)
        corrupted[0] = type(chunks[0])(index=0, data=np.zeros_like(chunks[0].data))
        assert not verify_recoverability(code, payload, corrupted)


class TestFunctionalCaching:
    def setup_method(self):
        self.code = ReedSolomonCode(n=7, k=4)
        self.coder = FunctionalCacheCoder(self.code, file_id="video-1")
        self.payload = bytes(np.random.default_rng(1).integers(0, 256, 1000, dtype=np.uint8))
        self.storage = self.coder.storage_chunks(self.payload)

    def test_extended_code_is_mds_for_every_d(self):
        for d in range(0, 5):
            assert self.coder.verify_extended_code_is_mds(d)

    def test_cache_chunks_have_extension_indices(self):
        cached = self.coder.build_cache_chunks(self.payload, d=3)
        assert [chunk.index for chunk in cached.chunks] == [7, 8, 9]
        assert cached.d == 3
        assert cached.original_size == len(self.payload)

    def test_reconstruct_with_any_storage_subset(self):
        cached = self.coder.build_cache_chunks(self.payload, d=2)
        needed = self.coder.required_storage_chunks(2)
        assert needed == 2
        for subset in itertools.combinations(self.storage, needed):
            recovered = self.coder.reconstruct(cached, subset)
            assert recovered == self.payload

    def test_reconstruct_requires_enough_storage_chunks(self):
        cached = self.coder.build_cache_chunks(self.payload, d=1)
        with pytest.raises(InsufficientChunksError):
            self.coder.reconstruct(cached, self.storage[:2])

    def test_fully_cached_file_needs_no_storage(self):
        cached = self.coder.build_cache_chunks(self.payload, d=4)
        assert self.coder.required_storage_chunks(4) == 0
        assert self.coder.reconstruct(cached, []) == self.payload

    def test_build_from_chunks_matches_build_from_payload(self):
        from_payload = self.coder.build_cache_chunks(self.payload, d=2)
        from_chunks = self.coder.build_cache_chunks_from_chunks(
            self.storage[:4], d=2, original_size=len(self.payload)
        )
        for a, b in zip(from_payload.chunks, from_chunks.chunks):
            assert a.index == b.index
            assert np.array_equal(a.data, b.data)

    def test_resize_shrink_keeps_prefix(self):
        cached = self.coder.build_cache_chunks(self.payload, d=3)
        shrunk = self.coder.resize_cache_allocation(cached, 1)
        assert shrunk.d == 1
        assert [c.index for c in shrunk.chunks] == [7]

    def test_resize_grow_requires_payload(self):
        cached = self.coder.build_cache_chunks(self.payload, d=1)
        with pytest.raises(ErasureCodeError):
            self.coder.resize_cache_allocation(cached, 3)
        grown = self.coder.resize_cache_allocation(cached, 3, payload=self.payload)
        assert grown.d == 3

    def test_invalid_d_rejected(self):
        with pytest.raises(ErasureCodeError):
            self.coder.build_cache_chunks(self.payload, d=5)
        with pytest.raises(ErasureCodeError):
            self.coder.build_cache_chunks(self.payload, d=-1)

    def test_cached_bytes(self):
        cached = self.coder.build_cache_chunks(self.payload, d=2)
        assert cached.cached_bytes == sum(chunk.size for chunk in cached.chunks)

    def test_cached_file_dataclass_defaults(self):
        empty = CachedFile(file_id="x", d=0)
        assert empty.cached_bytes == 0

    @given(
        d=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_any_k_of_storage_plus_cache_decodes(self, d, seed):
        rng = np.random.default_rng(seed)
        payload = bytes(rng.integers(0, 256, size=200, dtype=np.uint8))
        cached = self.coder.build_cache_chunks(payload, d=d)
        storage = self.coder.storage_chunks(payload)
        chosen = rng.choice(7, size=4 - d, replace=False)
        subset = [storage[int(i)] for i in chosen]
        assert self.coder.reconstruct(cached, subset, original_size=len(payload)) == payload


class TestExactVsFunctional:
    def test_exact_cache_chunks_are_verbatim(self):
        code = ReedSolomonCode(n=6, k=4)
        coder = FunctionalCacheCoder(code)
        payload = b"exact caching copies chunks verbatim" * 2
        storage = coder.storage_chunks(payload)
        cached = exact_cache_chunks(storage, 2)
        assert [chunk.index for chunk in cached] == [0, 1]

    def test_exact_cache_bounds(self):
        code = ReedSolomonCode(n=6, k=4)
        storage = FunctionalCacheCoder(code).storage_chunks(b"x" * 32)
        with pytest.raises(ErasureCodeError):
            exact_cache_chunks(storage, 7)

    def test_candidate_node_counts(self):
        counts = functional_vs_exact_candidate_nodes(n=7, k=4, d=2)
        assert counts["required"] == 2
        assert counts["functional_candidates"] == 7
        assert counts["exact_candidates"] == 5

    def test_candidate_node_counts_validation(self):
        with pytest.raises(ErasureCodeError):
            functional_vs_exact_candidate_nodes(n=4, k=5, d=0)
