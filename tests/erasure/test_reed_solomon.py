"""Tests for the Reed-Solomon codec."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure.reed_solomon import CodedChunk, ReedSolomonCode
from repro.exceptions import ErasureCodeError, InsufficientChunksError


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ErasureCodeError):
            ReedSolomonCode(n=3, k=0)
        with pytest.raises(ErasureCodeError):
            ReedSolomonCode(n=2, k=3)
        with pytest.raises(ErasureCodeError):
            ReedSolomonCode(n=7, k=4, max_extension=-1)
        with pytest.raises(ErasureCodeError):
            ReedSolomonCode(n=7, k=4, construction="bogus")

    def test_default_extension_is_k(self):
        code = ReedSolomonCode(n=7, k=4)
        assert code.max_extension == 4

    def test_generator_is_systematic(self):
        code = ReedSolomonCode(n=6, k=3)
        generator = code.generator
        assert np.array_equal(generator.data[:3, :], np.eye(3, dtype=np.uint8))

    def test_redundancy_factor(self):
        assert ReedSolomonCode(n=6, k=4).redundancy_factor == pytest.approx(1.5)

    def test_generator_row_out_of_range(self):
        code = ReedSolomonCode(n=6, k=3)
        with pytest.raises(ErasureCodeError):
            code.generator_row(20)

    def test_vandermonde_construction_also_mds(self):
        code = ReedSolomonCode(n=6, k=3, construction="vandermonde")
        assert code.generator.every_k_rows_invertible(3)


class TestEncodeDecode:
    def test_round_trip_all_chunks(self):
        code = ReedSolomonCode(n=7, k=4)
        payload = bytes(range(256)) * 4
        chunks = code.encode(payload)
        assert len(chunks) == 7
        assert code.decode(chunks, original_size=len(payload)) == payload

    def test_decode_from_every_k_subset(self):
        code = ReedSolomonCode(n=6, k=3)
        payload = b"functional caching for erasure-coded storage!"
        chunks = code.encode(payload)
        for subset in itertools.combinations(chunks, 3):
            assert code.decode(subset, original_size=len(payload)) == payload

    def test_decode_with_extension_chunks(self):
        code = ReedSolomonCode(n=6, k=4)
        payload = b"0123456789abcdef" * 5
        storage = code.encode(payload)
        extras = code.extension_chunks(payload, 2)
        mixture = [storage[5], storage[0], extras[0], extras[1]]
        assert code.decode(mixture, original_size=len(payload)) == payload

    def test_insufficient_chunks_raises(self):
        code = ReedSolomonCode(n=5, k=3)
        chunks = code.encode(b"hello world")
        with pytest.raises(InsufficientChunksError):
            code.decode(chunks[:2])

    def test_duplicate_chunks_do_not_count_twice(self):
        code = ReedSolomonCode(n=5, k=3)
        chunks = code.encode(b"hello world")
        with pytest.raises(InsufficientChunksError):
            code.decode([chunks[0], chunks[0], chunks[0]])

    def test_mismatched_chunk_sizes_rejected(self):
        code = ReedSolomonCode(n=5, k=3)
        chunks = code.encode(b"hello world hello")
        bad = CodedChunk(index=chunks[1].index, data=np.zeros(2, dtype=np.uint8))
        with pytest.raises(ErasureCodeError):
            code.decode([chunks[0], bad, chunks[2]])

    def test_unknown_chunk_index_rejected(self):
        code = ReedSolomonCode(n=5, k=3, max_extension=1)
        chunks = code.encode(b"hello world!")
        alien = CodedChunk(index=40, data=chunks[0].data)
        with pytest.raises(ErasureCodeError):
            code.decode([alien, chunks[1], chunks[2]])

    def test_empty_payload(self):
        code = ReedSolomonCode(n=5, k=3)
        chunks = code.encode(b"")
        assert code.decode(chunks, original_size=0) == b""

    def test_encode_matrix_requires_k_rows(self):
        code = ReedSolomonCode(n=5, k=3)
        with pytest.raises(ErasureCodeError):
            code.encode_matrix(np.zeros((2, 4), dtype=np.uint8))

    def test_extension_count_bounds(self):
        code = ReedSolomonCode(n=5, k=3)
        with pytest.raises(ErasureCodeError):
            code.extension_chunks(b"data", 4)

    def test_repair_chunk_is_bit_exact(self):
        code = ReedSolomonCode(n=6, k=4)
        payload = b"repair me please, any subset works" * 3
        chunks = code.encode(payload)
        repaired = code.repair_chunk(chunks[1:5], target_index=0)
        assert repaired.index == 0
        assert np.array_equal(repaired.data, chunks[0].data)

    @given(
        payload=st.binary(min_size=1, max_size=200),
        params=st.sampled_from([(4, 2), (5, 3), (6, 4), (7, 4), (9, 6)]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_k_subset_round_trip(self, payload, params, seed):
        n, k = params
        code = ReedSolomonCode(n=n, k=k)
        chunks = code.encode(payload)
        rng = np.random.default_rng(seed)
        subset_indices = rng.choice(n, size=k, replace=False)
        subset = [chunks[int(index)] for index in subset_indices]
        assert code.decode(subset, original_size=len(payload)) == payload

    def test_split_file_pads_to_multiple_of_k(self):
        code = ReedSolomonCode(n=5, k=3)
        matrix = code.split_file(b"abcd")
        assert matrix.shape[0] == 3
        assert matrix.shape[1] == 2  # ceil(4 / 3)
