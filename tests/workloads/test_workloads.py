"""Tests for workload definitions, traces, rate estimation and the generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import CephLikeCluster, ClusterConfig
from repro.exceptions import ModelError, WorkloadError
from repro.workloads.defaults import (
    DEFAULT_ARRIVAL_RATE_PATTERN,
    DEFAULT_SERVICE_RATES,
    paper_default_model,
    ten_file_model,
)
from repro.workloads.generator import (
    CosbenchWorkload,
    WorkloadStage,
    standard_read_workload,
)
from repro.workloads.rates import SlidingWindowRateEstimator
from repro.workloads.traces import (
    TABLE_I_ARRIVAL_RATES,
    TABLE_III_WORKLOAD,
    aggregate_rate_to_per_object,
    table_i_time_bins,
    table_iii_arrival_rates,
)


class TestDefaults:
    def test_paper_default_model_shape(self):
        model = paper_default_model(num_files=50, cache_capacity=25)
        assert model.num_nodes == 12
        assert model.num_files == 50
        assert all(spec.n == 7 and spec.k == 4 for spec in model.files)
        # Arrival-rate pattern cycles with period five.
        assert model.files[0].arrival_rate == pytest.approx(
            DEFAULT_ARRIVAL_RATE_PATTERN[0]
        )
        assert model.files[7].arrival_rate == pytest.approx(
            DEFAULT_ARRIVAL_RATE_PATTERN[2]
        )

    def test_paper_default_aggregate_rate(self):
        model = paper_default_model(num_files=1000, cache_capacity=500)
        # Section V-A: the aggregate arrival rate of all files is ~0.1416/s.
        assert model.total_arrival_rate == pytest.approx(0.1416, rel=0.01)

    def test_default_service_rates_match_paper_values(self):
        assert DEFAULT_SERVICE_RATES[:11] == [
            0.1, 0.1, 0.1, 0.0909, 0.0909, 0.0667, 0.0667, 0.0769, 0.0769,
            0.0588, 0.0588,
        ]

    def test_rate_scale(self):
        base = paper_default_model(num_files=10, cache_capacity=5)
        scaled = paper_default_model(num_files=10, cache_capacity=5, rate_scale=3.0)
        assert scaled.total_arrival_rate == pytest.approx(3 * base.total_arrival_rate)

    def test_service_rate_length_validation(self):
        with pytest.raises(ModelError):
            paper_default_model(num_files=5, cache_capacity=2, service_rates=[0.1, 0.2])

    def test_ten_file_model_split_placement(self):
        model = ten_file_model(placement_mode="split")
        assert model.num_files == 10
        for index, spec in enumerate(model.files):
            if index < 3:
                assert spec.placement == tuple(range(0, 7))
            else:
                assert spec.placement == tuple(range(5, 12))

    def test_ten_file_model_validation(self):
        with pytest.raises(ModelError):
            ten_file_model(arrival_rates=[0.1, 0.2])
        with pytest.raises(ModelError):
            ten_file_model(placement_mode="bogus")


class TestTraces:
    def test_table_i_structure(self):
        assert len(TABLE_I_ARRIVAL_RATES) == 3
        for rates in TABLE_I_ARRIVAL_RATES:
            assert len(rates) == 10
        # Bin 3: files 1 and 6 are the hottest at 0.00025.
        assert TABLE_I_ARRIVAL_RATES[2]["file-1"] == pytest.approx(0.00025)
        assert TABLE_I_ARRIVAL_RATES[2]["file-6"] == pytest.approx(0.00025)

    def test_table_i_time_bins(self):
        bins = table_i_time_bins(duration=60.0)
        assert [b.index for b in bins] == [1, 2, 3]
        assert all(b.duration == 60.0 for b in bins)

    def test_table_iii_values(self):
        assert TABLE_III_WORKLOAD[64] == pytest.approx(0.00051852)
        assert sorted(TABLE_III_WORKLOAD) == [4, 16, 64, 256, 1024]

    def test_table_iii_arrival_rates(self):
        rates = table_iii_arrival_rates(16, num_objects=100)
        assert len(rates) == 100
        assert all(rate == pytest.approx(0.00010824) for rate in rates.values())
        with pytest.raises(WorkloadError):
            table_iii_arrival_rates(5, 100)
        with pytest.raises(WorkloadError):
            table_iii_arrival_rates(16, 0)

    def test_aggregate_rate_split(self):
        rates = aggregate_rate_to_per_object(2.0, 400)
        assert len(rates) == 400
        assert sum(rates.values()) == pytest.approx(2.0)
        with pytest.raises(WorkloadError):
            aggregate_rate_to_per_object(-1.0, 10)
        with pytest.raises(WorkloadError):
            aggregate_rate_to_per_object(1.0, 0)


class TestSlidingWindowEstimator:
    def test_estimates_constant_rate(self):
        estimator = SlidingWindowRateEstimator(window=100.0)
        rng = np.random.default_rng(1)
        time = 0.0
        while time < 1000.0:
            time += rng.exponential(1.0 / 0.5)
            estimator.record_arrival("f", time)
        assert estimator.estimated_rate("f", now=1000.0) == pytest.approx(0.5, rel=0.4)

    def test_detects_rate_increase(self):
        estimator = SlidingWindowRateEstimator(
            window=50.0, change_threshold=0.5, min_observations=5
        )
        estimator.freeze_bin_rates({"f": 0.1})
        rng = np.random.default_rng(2)
        arrivals = []
        time = 0.0
        while time < 200.0:
            time += rng.exponential(1.0 / 0.1)
            arrivals.append((time, "f"))
        time = max(time, 200.0)
        while time < 400.0:
            time += rng.exponential(1.0 / 1.0)
            arrivals.append((time, "f"))
        events = estimator.replay(arrivals)
        assert events, "a rate change should have been detected"
        assert events[0].new_rate > events[0].previous_rate
        assert estimator.current_bin >= 2

    def test_no_false_trigger_for_stable_rate(self):
        estimator = SlidingWindowRateEstimator(
            window=200.0, change_threshold=1.5, min_observations=5
        )
        estimator.freeze_bin_rates({"f": 0.2})
        rng = np.random.default_rng(3)
        time = 0.0
        arrivals = []
        while time < 2000.0:
            time += rng.exponential(1.0 / 0.2)
            arrivals.append((time, "f"))
        assert estimator.replay(arrivals) == []

    def test_validation(self):
        with pytest.raises(WorkloadError):
            SlidingWindowRateEstimator(window=0.0)
        with pytest.raises(WorkloadError):
            SlidingWindowRateEstimator(window=1.0, change_threshold=0.0)
        estimator = SlidingWindowRateEstimator(window=10.0)
        estimator.record_arrival("f", 5.0)
        with pytest.raises(WorkloadError):
            estimator.record_arrival("f", 1.0)  # time went backwards


class TestCosbenchWorkload:
    def test_stage_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadStage(name="x", operation="erase")
        with pytest.raises(WorkloadError):
            WorkloadStage(name="x", operation="read", duration_s=0.0)
        with pytest.raises(WorkloadError):
            WorkloadStage(name="x", operation="read", duration_s=5.0, arrival_rates={})

    def test_workload_validation(self):
        stage = WorkloadStage(name="prepare", operation="write")
        with pytest.raises(WorkloadError):
            CosbenchWorkload([stage], mode="bogus")
        with pytest.raises(WorkloadError):
            CosbenchWorkload([], mode="optimal")

    def test_read_before_write_rejected(self):
        config = ClusterConfig(object_size_mb=16, cache_capacity_mb=512, seed=1)
        cluster = CephLikeCluster(config)
        workload = CosbenchWorkload(
            [
                WorkloadStage(
                    name="main",
                    operation="read",
                    duration_s=10.0,
                    arrival_rates={"obj-0": 0.1},
                )
            ],
            mode="baseline",
        )
        with pytest.raises(WorkloadError):
            workload.run(cluster)

    def test_standard_workload_baseline_end_to_end(self):
        config = ClusterConfig(object_size_mb=16, cache_capacity_mb=256, seed=1)
        cluster = CephLikeCluster(config)
        rates = {f"obj-{i}": 0.05 for i in range(20)}
        workload = standard_read_workload(rates, duration_s=100.0, mode="baseline")
        results = workload.run(cluster, seed=2)
        assert results[0].objects_written == 20
        assert results[1].read_result is not None
        assert results[1].read_result.requests > 0

    def test_standard_workload_optimal_requires_pool_map(self):
        config = ClusterConfig(object_size_mb=16, cache_capacity_mb=256, seed=1)
        cluster = CephLikeCluster(config)
        rates = {f"obj-{i}": 0.05 for i in range(5)}
        workload = standard_read_workload(rates, duration_s=50.0, mode="optimal")
        with pytest.raises(WorkloadError):
            workload.run(cluster)
        results = workload.run(cluster, object_pool_map={name: 1 for name in rates}, seed=2)
        assert results[-1].read_result is not None
