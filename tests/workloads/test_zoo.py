"""Property tests of the non-stationary workload zoo and the Workload API."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Scenario, get_workload, run_scenario
from repro.core.model import StorageSystemModel
from repro.exceptions import ScenarioError, WorkloadError
from repro.workloads import (
    DiurnalWorkload,
    FlashCrowdWorkload,
    PopularityDriftWorkload,
    RequestStream,
    StationaryWorkload,
    Workload,
    as_workload,
    paper_default_model,
    zipf_weights,
)

HORIZON = 5_000.0


def assert_valid_stream(stream: RequestStream, num_files: int) -> None:
    assert np.all(np.diff(stream.times) >= 0)
    assert stream.times.size == 0 or stream.times[0] >= 0.0
    assert stream.times.size == 0 or stream.times[-1] < HORIZON
    assert stream.num_objects == num_files
    if stream.num_requests:
        assert stream.object_positions.min() >= 0
        assert stream.object_positions.max() < num_files


class TestDiurnal:
    @given(
        amplitude=st.floats(0.0, 1.0),
        period=st.floats(100.0, 200_000.0),
        phase=st.floats(0.0, 100_000.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_rates_nonnegative(self, amplitude, period, phase):
        workload = DiurnalWorkload(
            num_files=10, amplitude=amplitude, period=period, phase=phase
        )
        times = np.linspace(0.0, 3 * period, 512)
        assert np.all(workload.rate_at(times) >= 0.0)
        assert np.all(workload._mean_rates() >= 0.0)

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_seeded_determinism(self, seed):
        workload = DiurnalWorkload(num_files=12, total_rate=0.5)
        a = workload.sample(np.random.default_rng(seed), horizon=HORIZON)
        b = workload.sample(np.random.default_rng(seed), horizon=HORIZON)
        np.testing.assert_array_equal(a.times, b.times)
        np.testing.assert_array_equal(a.object_positions, b.object_positions)

    def test_stream_shape(self):
        workload = DiurnalWorkload(num_files=12, total_rate=0.5)
        stream = workload.sample(np.random.default_rng(3), horizon=HORIZON)
        assert_valid_stream(stream, 12)
        assert stream.num_requests > 0

    def test_amplitude_validated(self):
        with pytest.raises(WorkloadError, match="amplitude"):
            DiurnalWorkload(amplitude=1.5)

    def test_horizon_required(self):
        with pytest.raises(WorkloadError, match="horizon"):
            DiurnalWorkload().sample(np.random.default_rng(0))


class TestFlashCrowd:
    @given(
        spike_rate=st.floats(0.0, 5.0),
        decay=st.floats(1.0, 10_000.0),
        flash_time=st.floats(0.0, HORIZON),
    )
    @settings(max_examples=25, deadline=None)
    def test_rates_nonnegative(self, spike_rate, decay, flash_time):
        workload = FlashCrowdWorkload(
            num_files=10, spike_rate=spike_rate, decay=decay, flash_time=flash_time
        )
        times = np.linspace(0.0, HORIZON, 512)
        assert np.all(workload.spike_rate_at(times) >= 0.0)
        assert np.all(workload._mean_rates() >= 0.0)

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_seeded_determinism(self, seed):
        workload = FlashCrowdWorkload(num_files=12, base_rate=0.3, spike_rate=0.5)
        a = workload.sample(np.random.default_rng(seed), horizon=HORIZON)
        b = workload.sample(np.random.default_rng(seed), horizon=HORIZON)
        np.testing.assert_array_equal(a.times, b.times)
        np.testing.assert_array_equal(a.object_positions, b.object_positions)

    def test_spike_is_silent_before_flash_time(self):
        workload = FlashCrowdWorkload(num_files=10, flash_time=1_000.0)
        assert np.all(workload.spike_rate_at(np.array([0.0, 999.9])) == 0.0)
        assert workload.spike_rate_at(np.array([1_000.0]))[0] == pytest.approx(
            workload.spike_rate
        )

    def test_spike_adds_requests_on_hot_set(self):
        quiet = FlashCrowdWorkload(num_files=10, base_rate=0.2, spike_rate=0.0)
        loud = FlashCrowdWorkload(
            num_files=10, base_rate=0.2, spike_rate=2.0, decay=HORIZON
        )
        rng_quiet = np.random.default_rng(5)
        rng_loud = np.random.default_rng(5)
        assert (
            loud.sample(rng_loud, horizon=HORIZON).num_requests
            > quiet.sample(rng_quiet, horizon=HORIZON).num_requests
        )

    def test_hot_objects_validated(self):
        with pytest.raises(WorkloadError, match="hot_objects"):
            FlashCrowdWorkload(num_files=4, hot_objects=9)


class TestDrift:
    @given(
        shift_every=st.floats(1.0, 100_000.0),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_positions_in_range_and_deterministic(self, shift_every, seed):
        workload = PopularityDriftWorkload(
            num_files=9, total_rate=0.4, shift_every=shift_every
        )
        a = workload.sample(np.random.default_rng(seed), horizon=HORIZON)
        b = workload.sample(np.random.default_rng(seed), horizon=HORIZON)
        assert_valid_stream(a, 9)
        np.testing.assert_array_equal(a.times, b.times)
        np.testing.assert_array_equal(a.object_positions, b.object_positions)

    def test_ranking_rotates(self):
        workload = PopularityDriftWorkload(num_files=10, shift_every=100.0)
        shifts = workload.shift_at(np.array([0.0, 99.9, 100.0, 1_050.0]))
        assert shifts.tolist() == [0, 0, 1, 10 % 10]

    def test_mean_rates_uniform(self):
        workload = PopularityDriftWorkload(num_files=8, total_rate=0.4)
        np.testing.assert_allclose(workload._mean_rates(), 0.05)


class TestWorkloadProtocol:
    def test_zoo_models_expose_mean_rates(self):
        for workload in (
            DiurnalWorkload(num_files=10, cache_capacity=5),
            FlashCrowdWorkload(num_files=10, cache_capacity=5),
            PopularityDriftWorkload(num_files=10, cache_capacity=5),
        ):
            model = workload.model()
            assert isinstance(model, StorageSystemModel)
            assert model.num_files == 10
            assert not workload.stationary
            assert workload.default_horizon() is None

    def test_as_workload_wraps_models(self):
        model = paper_default_model(num_files=5, cache_capacity=2)
        workload = as_workload(model, name="wrapped")
        assert isinstance(workload, StationaryWorkload)
        assert workload.stationary and workload.name == "wrapped"
        assert workload.model() is model
        stream = workload.sample(np.random.default_rng(1), horizon=HORIZON)
        assert_valid_stream(stream, 5)

    def test_as_workload_passes_workloads_through(self):
        workload = DiurnalWorkload(num_files=5)
        assert as_workload(workload, name="diurnal") is workload
        assert workload.name == "diurnal"

    def test_as_workload_rejects_other_types(self):
        with pytest.raises(WorkloadError, match="must return"):
            as_workload({"not": "a workload"})

    def test_zipf_weights_normalized(self):
        weights = zipf_weights(17, 0.9)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(np.diff(weights) <= 0)

    def test_registry_specs_expose_kind_and_params(self):
        spec = get_workload("diurnal")
        assert spec.kind == "non-stationary"
        assert "amplitude" in spec.accepted_params()
        assert get_workload("paper_default").kind == "stationary"
        assert get_workload("trace").kind == "trace"

    def test_workload_params_validated_eagerly(self):
        with pytest.raises(ScenarioError, match="accepted parameters"):
            Scenario(workload="flash_crowd", workload_params={"spike": 2.0})
        # Valid names construct fine.
        Scenario(workload="flash_crowd", workload_params={"spike_rate": 2.0})

    def test_scenario_seed_changes_sampled_stream(self):
        base = Scenario(
            workload="diurnal",
            num_files=10,
            cache_capacity=5,
            horizon=4_000.0,
            workload_params={"total_rate": 0.5},
        )
        a = run_scenario(base)
        b = run_scenario(base.replace(seed=99))
        assert (
            a.simulation.requests_completed != b.simulation.requests_completed
            or a.simulated_mean_latency != b.simulated_mean_latency
        )

    def test_legacy_builders_warn_but_work(self):
        from repro.workloads import defaults

        with pytest.deprecated_call():
            model = defaults.paper_default_model(num_files=5, cache_capacity=2)
        assert model.num_files == 5
