"""Tests of the trace-ingestion layer: schemas, validation, loading, replay."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.api import Scenario, run_scenario
from repro.cluster.cluster import ClusterConfig
from repro.cluster.replay import ClusterReplay, ReplayTrace
from repro.exceptions import ScenarioError, TraceError, TraceValidationError
from repro.workloads.base import RequestStream
from repro.workloads.ingest import (
    CDN_SCHEMA,
    ColumnarTrace,
    TraceWorkload,
    factorize_object_ids,
    get_trace_schema,
    list_trace_schemas,
    load_trace,
    sniff_format,
    validate_columns,
    validate_trace,
)

FIXTURE = Path(__file__).parent / "fixtures" / "mini_cdn.csv"


def good_columns(n=8):
    return {
        "timestamp": np.linspace(0.0, 70.0, n),
        "object_id": np.array([f"obj-{i % 3}" for i in range(n)], dtype="S8"),
        "size": np.full(n, 1024, dtype=np.int64),
        "op": np.array(["GET"] * n, dtype="S4"),
    }


class TestSchemas:
    def test_builtin_schemas_registered(self):
        assert {"cdn", "kv", "block"} <= set(list_trace_schemas())
        assert get_trace_schema("cdn") is CDN_SCHEMA

    def test_unknown_schema_rejected(self):
        with pytest.raises(TraceError, match="unknown trace schema"):
            get_trace_schema("nope")

    def test_header_aliases_resolve(self):
        mapping = CDN_SCHEMA.resolve_headers(["ts", "URL", "bytes", "op"])
        assert mapping == {"timestamp": 0, "object_id": 1, "size": 2, "op": 3}

    def test_missing_required_header_raises(self):
        with pytest.raises(TraceError, match="object_id"):
            CDN_SCHEMA.resolve_headers(["timestamp", "size"])

    def test_sniff_format(self):
        assert sniff_format("a.csv") == "csv"
        assert sniff_format("a.ndjson") == "jsonl"
        assert sniff_format("a.npz") == "npz"
        assert sniff_format("a.bin", format="csv") == "csv"
        with pytest.raises(TraceError, match="cannot infer"):
            sniff_format("a.bin")


class TestValidator:
    def test_clean_columns_pass(self):
        report = validate_columns(good_columns(), CDN_SCHEMA)
        assert report.ok and report.rows == 8

    def test_bad_dtype_reported(self):
        columns = good_columns()
        columns["timestamp"] = columns["timestamp"].astype("S8")
        report = validate_columns(columns, CDN_SCHEMA)
        violations = report.for_column("timestamp")
        assert [v.check for v in violations] == ["dtype"]
        with pytest.raises(TraceValidationError) as excinfo:
            report.raise_for_violations()
        assert excinfo.value.report is report

    def test_unsorted_timestamps_reported(self):
        columns = good_columns()
        columns["timestamp"] = columns["timestamp"][::-1].copy()
        report = validate_columns(columns, CDN_SCHEMA)
        (violation,) = report.for_column("timestamp")
        assert violation.check == "unsorted"
        assert violation.first_row == 1

    def test_negative_sizes_reported(self):
        columns = good_columns()
        columns["size"][3] = -5
        report = validate_columns(columns, CDN_SCHEMA)
        (violation,) = report.for_column("size")
        assert violation.check == "negative"
        assert violation.count == 1 and violation.first_row == 3

    def test_unknown_op_reported(self):
        columns = good_columns()
        columns["op"][2] = b"EVIL"
        report = validate_columns(columns, CDN_SCHEMA)
        (violation,) = report.for_column("op")
        assert violation.check == "unknown_op"

    def test_nan_timestamps_reported(self):
        columns = good_columns()
        columns["timestamp"][4] = np.nan
        report = validate_columns(columns, CDN_SCHEMA)
        assert "nan" in {v.check for v in report.for_column("timestamp")}

    def test_missing_required_column_reported(self):
        columns = good_columns()
        del columns["object_id"]
        report = validate_columns(columns, CDN_SCHEMA)
        (violation,) = report.for_column("object_id")
        assert violation.check == "missing"

    def test_multiple_violations_collected_in_one_pass(self):
        columns = good_columns()
        columns["timestamp"] = columns["timestamp"][::-1].copy()
        columns["size"][0] = -1
        columns["op"][1] = b"EVIL"
        report = validate_columns(columns, CDN_SCHEMA)
        assert {v.column for v in report.violations} == {"timestamp", "size", "op"}
        assert "3 violation(s)" in report.summary()


class TestFactorize:
    def test_first_appearance_order(self):
        ids = np.array(["b", "a", "b", "c", "a"], dtype="S4")
        positions, table = factorize_object_ids(ids)
        assert table == ("b", "a", "c")
        assert positions.tolist() == [0, 1, 0, 2, 1]

    def test_wide_ids_hash_consistently(self):
        # Wider than one 8-byte word: exercises the multi-word hash.
        ids = np.array([f"object/very/long/name-{i % 7:04d}" for i in range(50)])
        positions, table = factorize_object_ids(ids)
        assert len(table) == 7
        reconstructed = [table[p] for p in positions]
        assert reconstructed == [f"object/very/long/name-{i % 7:04d}" for i in range(50)]

    def test_integer_ids(self):
        positions, table = factorize_object_ids(np.array([7, 3, 7, 9]))
        assert table == ("7", "3", "9")
        assert positions.tolist() == [0, 1, 0, 2]

    def test_empty(self):
        positions, table = factorize_object_ids(np.empty(0, dtype="S8"))
        assert positions.size == 0 and table == ()


class TestLoader:
    def test_fixture_validates_and_loads(self):
        report = validate_trace(FIXTURE)
        assert report.ok, report.summary()
        stream = load_trace(FIXTURE)
        assert stream.num_requests > 0
        assert stream.num_objects > 1
        assert stream.times[0] == 0.0
        assert np.all(np.diff(stream.times) >= 0)
        assert stream.sizes_bytes is not None
        assert np.all(stream.sizes_bytes > 0)

    def test_reads_only_filters_writes(self):
        everything = load_trace(FIXTURE, reads_only=False)
        reads = load_trace(FIXTURE)
        assert reads.num_requests < everything.num_requests

    def test_lazy_columnar_view(self):
        trace = ColumnarTrace(FIXTURE)
        assert not trace.loaded
        assert trace.num_rows == 200
        assert trace.loaded
        assert set(trace.columns) == {"timestamp", "object_id", "size", "op"}
        with pytest.raises(TraceError, match="no column"):
            trace.column("latency")

    def test_jsonl_and_npz_round_trip(self, tmp_path):
        csv_stream = load_trace(FIXTURE)
        trace = ColumnarTrace(FIXTURE)
        columns = trace.columns

        jsonl_path = tmp_path / "mini.jsonl"
        with open(jsonl_path, "w") as handle:
            for row in range(trace.num_rows):
                handle.write(
                    json.dumps(
                        {
                            "timestamp": float(columns["timestamp"][row]),
                            "object_id": columns["object_id"][row].decode(),
                            "size": int(columns["size"][row]),
                            "op": columns["op"][row].decode(),
                        }
                    )
                    + "\n"
                )
        npz_path = tmp_path / "mini.npz"
        np.savez(
            npz_path,
            timestamp=columns["timestamp"],
            object_id=columns["object_id"].astype("U"),
            size=columns["size"],
            op=columns["op"].astype("U"),
        )

        for path in (jsonl_path, npz_path):
            stream = load_trace(path)
            assert stream.object_ids == csv_stream.object_ids
            np.testing.assert_array_equal(stream.times, csv_stream.times)
            np.testing.assert_array_equal(
                stream.object_positions, csv_stream.object_positions
            )
            np.testing.assert_array_equal(
                stream.sizes_bytes, csv_stream.sizes_bytes
            )

    def test_validation_failure_carries_report(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "timestamp,object_id,size,op\n"
            "5.0,a,100,GET\n"
            "1.0,b,-7,GET\n"
        )
        with pytest.raises(TraceValidationError) as excinfo:
            load_trace(path)
        checks = {v.check for v in excinfo.value.report.violations}
        assert checks == {"unsorted", "negative"}

    def test_unparseable_csv_reports_column(self, tmp_path):
        path = tmp_path / "garbled.csv"
        path.write_text(
            "timestamp,object_id,size,op\n"
            "1.0,a,100,GET\n"
            "oops,b,100,GET\n"
        )
        with pytest.raises(TraceValidationError) as excinfo:
            load_trace(path)
        assert excinfo.value.report.for_column("timestamp")

    def test_missing_file(self):
        with pytest.raises(TraceError, match="does not exist"):
            load_trace("/nonexistent/trace.csv")


class TestReplayParity:
    def test_fixture_replays_bit_equal_across_engines(self):
        """Counters of the epoch engine match the per-request reference."""
        stream = load_trace(FIXTURE)
        trace = ReplayTrace.from_request_stream(stream)
        config = ClusterConfig(cache_capacity_mb=4 * 1024)
        results = {}
        for engine in ("request", "epoch"):
            replay = ClusterReplay(config, list(stream.object_ids), policy="lru")
            results[engine] = replay.run(trace, engine=engine, seed=11)
        request, epoch = results["request"], results["epoch"]
        assert epoch.reads == request.reads == stream.num_requests
        assert epoch.hits == request.hits
        assert epoch.promotions == request.promotions
        assert epoch.chunks_from_cache == request.chunks_from_cache
        assert epoch.chunks_from_storage == request.chunks_from_storage
        np.testing.assert_array_equal(epoch.hit_mask, request.hit_mask)
        np.testing.assert_allclose(
            epoch.latencies_ms, request.latencies_ms, rtol=1e-9
        )

    def test_to_replay_trace_converts_to_milliseconds(self):
        stream = load_trace(FIXTURE)
        trace = stream.to_replay_trace()
        np.testing.assert_allclose(trace.times_ms, stream.times * 1000.0)


class TestTraceWorkload:
    def test_scenario_round_trips_through_json(self):
        scenario = Scenario(
            workload="trace",
            workload_params={"path": FIXTURE, "schema": "cdn"},
            cache_capacity=20,
        )
        # Path values are coerced to str for JSON safety.
        assert scenario.workload_params["path"] == str(FIXTURE)
        payload = json.loads(json.dumps(scenario.to_dict()))
        assert Scenario.from_dict(payload) == scenario

    def test_trace_requires_path(self):
        with pytest.raises(TraceError, match="path"):
            run_scenario(Scenario(workload="trace", simulate=False))

    def test_unknown_trace_param_fails_at_construction(self):
        with pytest.raises(ScenarioError, match="accepted parameters"):
            Scenario(workload="trace", workload_params={"pth": "x.csv"})

    def test_run_scenario_end_to_end(self):
        result = run_scenario(
            Scenario(
                workload="trace",
                workload_params={"path": FIXTURE},
                cache_capacity=20,
            )
        )
        assert result.simulation is not None
        stream = load_trace(FIXTURE)
        # The trace defines both the horizon and the replayed arrivals.
        assert result.simulation.horizon == pytest.approx(stream.duration)
        assert result.simulation.requests_completed <= stream.num_requests
        assert result.simulated_mean_latency > 0

    def test_engines_agree_on_request_count(self):
        base = Scenario(
            workload="trace", workload_params={"path": FIXTURE}, cache_capacity=20
        )
        batch = run_scenario(base)
        event = run_scenario(base.replace(engine="event"))
        assert (
            batch.simulation.requests_completed
            == event.simulation.requests_completed
        )

    def test_workload_object_protocol(self):
        stream = load_trace(FIXTURE)
        workload = TraceWorkload(stream=stream, cache_capacity=10)
        assert not workload.stationary
        assert workload.default_horizon() == pytest.approx(stream.duration)
        model = workload.model()
        assert model.num_files == stream.num_objects
        # sample() replays the recorded stream; rng is irrelevant.
        sampled = workload.sample(np.random.default_rng(0))
        assert sampled is stream
        truncated = workload.sample(
            np.random.default_rng(0), horizon=stream.duration / 2
        )
        assert truncated.num_requests < stream.num_requests
