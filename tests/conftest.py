"""Shared fixtures for the Sprout reproduction test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import FileSpec, StorageSystemModel
from repro.queueing.distributions import ExponentialService
from repro.workloads.defaults import DEFAULT_SERVICE_RATES


@pytest.fixture
def rng():
    """A deterministic numpy random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_model():
    """A 6-file, 6-node model that is quick to optimize and simulate."""
    services = [ExponentialService(rate) for rate in (0.5, 0.5, 0.4, 0.4, 0.3, 0.3)]
    files = []
    placements = [
        (0, 1, 2, 3, 4),
        (1, 2, 3, 4, 5),
        (0, 2, 3, 4, 5),
        (0, 1, 3, 4, 5),
        (0, 1, 2, 4, 5),
        (0, 1, 2, 3, 5),
    ]
    rates = [0.08, 0.06, 0.05, 0.04, 0.03, 0.02]
    for index, (placement, rate) in enumerate(zip(placements, rates)):
        files.append(
            FileSpec(
                file_id=f"file-{index}",
                n=5,
                k=3,
                placement=placement,
                arrival_rate=rate,
                chunk_size=4,
            )
        )
    return StorageSystemModel(services=services, files=files, cache_capacity=5)


@pytest.fixture
def paper_like_model():
    """A reduced version of the paper's default model (12 nodes, 40 files)."""
    rng = np.random.default_rng(99)
    services = [ExponentialService(rate) for rate in DEFAULT_SERVICE_RATES]
    pattern = [0.000156, 0.000156, 0.000125, 0.000167, 0.000104]
    files = []
    for index in range(40):
        placement = [int(x) for x in rng.choice(12, size=7, replace=False)]
        files.append(
            FileSpec(
                file_id=f"file-{index}",
                n=7,
                k=4,
                placement=placement,
                arrival_rate=pattern[index % 5] * 25.0,
                chunk_size=25,
            )
        )
    return StorageSystemModel(services=services, files=files, cache_capacity=20)
