"""Warm-start convergence parity: warm and cold agree on the convex solve.

Warm and cold resolves of the same bin share the carried ``z``, so their
first fixed-``z`` solves minimize the same problem; inside the queueing-
stable envelope that problem is convex and both must reach the unique
optimal value to solver tolerance.  The suite drives a fig3-style sweep
of rate scalings plus adversarial jumps and asserts the agreement the
ISSUE gates at <= 1e-6 relative.

Operating envelope
------------------
The implemented fixed-``z`` objective clips per-pair loads at the
stability boundary, which makes it convex only on the queueing-stable
region.  Outside it (rate scalings large enough that the no-cache
starting point saturates servers) FISTA can jam at spurious stationary
points, so the parity guarantee -- like the paper's bound itself -- only
holds for stable operating points.  The sweep below stays inside that
envelope.  Under *adversarial* jumps (popularity reversal, hot spikes)
the clipped landscape additionally exposes nearby distinct stationary
points ~1e-5 apart in relative objective; warm and cold each converge,
but occasionally to different members of that cluster, so those cases
assert a documented looser bound while the steady-state ISSUE gate is
enforced by the benchmark.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.control import OnlineResolver

PARITY_RTOL = 1e-6
# Adversarial jumps can land warm and cold on distinct nearby stationary
# points of the clipped objective (see module docstring); the observed
# plateau is ~3.5e-6 and does not shrink with iteration budget.
ADVERSARIAL_RTOL = 1e-5

# Machine-precision parity on the fig3-style sweep needs a tight stop:
# the default windowed-stop knobs leave ~1e-6 of slack on the table.
TIGHT_KNOBS = dict(fista_tolerance=1e-13, check_window=50, fista_iterations=4000)


def parity_gap(resolver, rates):
    """Cold comparator first (commit=False), then the committed warm solve."""
    cold = resolver.resolve(rates, warm=False, commit=False)
    warm = resolver.resolve(rates, warm=True, commit=True)
    gap = abs(warm.relaxed_objective - cold.relaxed_objective) / max(
        abs(cold.relaxed_objective), 1.0
    )
    return gap, warm, cold


def assert_parity(resolver, rates, rtol=PARITY_RTOL):
    gap, warm, cold = parity_gap(resolver, rates)
    assert gap <= rtol, (
        f"warm/cold relaxed-objective gap {gap:.3e} exceeds {rtol:.0e} "
        f"(warm={warm.relaxed_objective!r}, cold={cold.relaxed_objective!r}, "
        f"fallback={warm.fallback})"
    )
    return warm


class TestFig3StyleSweep:
    def test_parity_across_rate_scalings(self, paper_like_model):
        # Scales chosen to keep the cold start (no caching) queueing-
        # stable; with the tight stop both sides reach the optimum to
        # machine precision (observed gaps <= 3e-15).
        resolver = OnlineResolver(paper_like_model, **TIGHT_KNOBS)
        resolver.bootstrap()
        base = np.asarray([spec.arrival_rate for spec in paper_like_model.files])
        for scale in (1.1, 0.8, 1.2, 0.9, 1.0):
            assert_parity(resolver, base * scale)

    def test_parity_under_small_perturbations(self, small_model):
        resolver = OnlineResolver(small_model, **TIGHT_KNOBS)
        resolver.bootstrap()
        base = np.asarray([spec.arrival_rate for spec in small_model.files])
        rng = np.random.default_rng(17)
        for _ in range(5):
            rates = base * (1.0 + 0.05 * rng.standard_normal(base.size))
            assert_parity(resolver, np.clip(rates, 1e-4, None))


class TestAdversarialJumps:
    def test_parity_when_popularity_reverses(self, paper_like_model):
        # A full popularity reversal invalidates most of the carried
        # active set; scaled to 0.7x to keep the cold start stable.
        resolver = OnlineResolver(paper_like_model, **TIGHT_KNOBS)
        resolver.bootstrap()
        base = np.asarray([spec.arrival_rate for spec in paper_like_model.files])
        assert_parity(resolver, (base * 0.7)[::-1].copy(), rtol=ADVERSARIAL_RTOL)

    def test_parity_under_a_hot_spike(self, paper_like_model):
        resolver = OnlineResolver(paper_like_model, **TIGHT_KNOBS)
        resolver.bootstrap()
        rates = np.asarray(
            [spec.arrival_rate for spec in paper_like_model.files]
        ).copy()
        rates[0] *= 3.0
        rates[1] *= 3.0
        assert_parity(resolver, rates, rtol=ADVERSARIAL_RTOL)

    def test_parity_survives_a_long_drifting_sequence(self, small_model):
        resolver = OnlineResolver(small_model, **TIGHT_KNOBS)
        resolver.bootstrap()
        base = np.asarray([spec.arrival_rate for spec in small_model.files])
        rng = np.random.default_rng(23)
        rates = base.copy()
        for _ in range(8):
            rates = np.clip(
                rates * (1.0 + 0.3 * rng.standard_normal(rates.size)),
                1e-4,
                None,
            )
            assert_parity(resolver, rates)


class TestWarmIsNotSlowerInIterations:
    def test_warm_uses_fewer_first_stage_iterations(self, paper_like_model):
        # Not a wall-clock benchmark (that lives in benchmarks/); at test
        # scale we assert the mechanism: a warm resolve of a small rate
        # perturbation spends fewer total FISTA iterations than the cold
        # resolve of the same bin.
        resolver = OnlineResolver(paper_like_model)
        resolver.bootstrap()
        base = np.asarray([spec.arrival_rate for spec in paper_like_model.files])
        rates = base * 1.02
        cold = resolver.resolve(rates, warm=False, commit=False)
        warm = resolver.resolve(rates, warm=True, commit=False)
        assert warm.iterations < cold.iterations
