"""End-to-end wiring: Scenario / Session / CLI faces of the control loop."""

from __future__ import annotations

import json

import pytest

from repro.api import Scenario, run_scenario
from repro.api.serialize import json_dumps
from repro.exceptions import ScenarioError


def control_scenario(**overrides):
    fields = dict(
        workload="drift",
        num_files=12,
        cache_capacity=12,
        simulate=False,
        seed=3,
        horizon=4000.0,
        workload_params={"shift_every": 800.0},
        controller="online",
        controller_params={"window": 600.0, "churn_budget": 4},
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestScenarioValidation:
    def test_controller_params_require_a_controller(self):
        with pytest.raises(ScenarioError, match="controller"):
            Scenario(controller_params={"window": 600.0})

    def test_unknown_controller_is_rejected(self):
        with pytest.raises(Exception):
            Scenario(controller="no-such-controller")

    def test_unknown_controller_param_is_rejected(self):
        with pytest.raises(ScenarioError, match="interval"):
            Scenario(controller="online", controller_params={"interval": 60.0})

    def test_describe_and_roundtrip(self):
        scenario = control_scenario()
        assert "controller=online" in scenario.describe()
        clone = Scenario.from_dict(scenario.to_dict())
        assert clone == scenario
        assert hash(clone) == hash(scenario)
        assert clone.controller_params["churn_budget"] == 4


class TestSessionControlStage:
    def test_run_scenario_attaches_control(self):
        result = run_scenario(control_scenario())
        control = result.control
        assert control is not None
        assert control.num_bins >= 2
        assert control.churn_budget == 4
        assert "controller (online)" in result.summary()

    def test_no_controller_means_no_control_stage(self):
        result = run_scenario(
            Scenario(
                workload="drift",
                num_files=12,
                cache_capacity=12,
                simulate=False,
                horizon=2000.0,
            )
        )
        assert result.control is None
        assert "controller" not in result.summary()

    def test_result_payload_is_json_safe(self):
        result = run_scenario(control_scenario())
        payload = result.to_dict()
        assert payload["control"]["controller"] == "online"
        decoded = json.loads(json_dumps(payload))
        assert decoded["control"]["num_bins"] == result.control.num_bins

    def test_periodic_controller_through_the_session(self):
        result = run_scenario(
            control_scenario(
                controller="periodic",
                controller_params={"interval": 1000.0},
            )
        )
        assert result.control.num_drift_events == 0
        assert result.control.num_bins >= 3


class TestCLI:
    def test_listing_shows_the_controllers_section(self):
        from repro.experiments.runner import format_listing

        listing = format_listing()
        assert "Registered controllers:" in listing
        assert "online" in listing and "periodic" in listing

    def test_fig14_is_registered_with_both_scales(self):
        from repro.api import get_experiment

        spec = get_experiment("fig14")
        assert set(spec.scale_names()) == {"fast", "paper"}
        assert spec.accepts("controller")

    def test_scenario_experiment_forwards_the_controller(self):
        from repro.experiments.runner import run_experiment

        report = run_experiment(
            "scenario",
            scale="fast",
            workload="drift",
            workload_params={"shift_every": 800.0},
            controller="online",
            controller_params={"window": 600.0, "churn_budget": 4},
            as_json=True,
        )
        payload = json.loads(report)
        assert payload["result"]["control"]["controller"] == "online"
        assert payload["result"]["control"]["num_bins"] >= 1
