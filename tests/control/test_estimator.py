"""Tests for the streaming rate estimator and its drift trigger."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control import DriftEvent, StreamingRateEstimator
from repro.exceptions import ControlError


def uniform_chunk(start, stop, rate_per_file, num_files):
    """A deterministic chunk with exact per-file rate ``rate_per_file``."""
    per_file = int(round((stop - start) * rate_per_file))
    times = np.sort(
        np.tile(np.linspace(start, stop, per_file, endpoint=False), num_files)
    )
    positions = np.tile(np.arange(num_files), per_file)
    return times, positions


class TestValidation:
    def test_constructor_rejects_bad_knobs(self):
        with pytest.raises(ControlError):
            StreamingRateEstimator(num_files=0, window=10.0)
        with pytest.raises(ControlError):
            StreamingRateEstimator(num_files=3, window=0.0)
        with pytest.raises(ControlError):
            StreamingRateEstimator(num_files=3, window=10.0, change_threshold=0.0)
        with pytest.raises(ControlError):
            StreamingRateEstimator(num_files=3, window=10.0, min_observations=0)
        with pytest.raises(ControlError):
            StreamingRateEstimator(num_files=3, window=10.0, file_ids=["a"])

    def test_observe_rejects_malformed_chunks(self):
        estimator = StreamingRateEstimator(num_files=3, window=10.0)
        with pytest.raises(ControlError):
            estimator.observe(np.array([1.0, 2.0]), np.array([0]))
        with pytest.raises(ControlError):
            estimator.observe(np.array([-1.0]), np.array([0]))
        with pytest.raises(ControlError):
            estimator.observe(np.array([2.0, 1.0]), np.array([0, 1]))
        with pytest.raises(ControlError):
            estimator.observe(np.array([1.0]), np.array([3]))
        estimator.observe(np.array([5.0]), np.array([0]))
        with pytest.raises(ControlError):
            # Chunks must arrive in non-decreasing time order.
            estimator.observe(np.array([4.0]), np.array([0]))

    def test_freeze_rejects_wrong_shape(self):
        estimator = StreamingRateEstimator(num_files=3, window=10.0)
        with pytest.raises(ControlError):
            estimator.freeze_bin_rates(np.ones(2))


class TestDegeneratePaths:
    def test_empty_chunk_is_a_no_op(self):
        estimator = StreamingRateEstimator(num_files=2, window=10.0)
        assert estimator.observe(np.array([]), np.array([])) is None
        assert np.all(estimator.rates() == 0.0)

    def test_rates_before_any_observation_are_zero_and_finite(self):
        estimator = StreamingRateEstimator(num_files=4, window=10.0)
        rates = estimator.rates()
        assert rates.shape == (4,)
        assert np.all(rates == 0.0)

    def test_single_instantaneous_chunk_divides_by_full_window(self):
        # Zero elapsed time must not divide by zero: the full window is
        # used as the divisor instead.
        estimator = StreamingRateEstimator(num_files=2, window=10.0)
        estimator.observe(np.array([0.0, 0.0]), np.array([0, 0]))
        rates = estimator.rates()
        assert np.isfinite(rates).all()
        assert rates[0] == pytest.approx(2 / 10.0)

    def test_partial_window_uses_elapsed_time(self):
        # 20 arrivals in the first 100 s of a 600 s window estimate the
        # true 0.2/s rate, not 20/600.
        estimator = StreamingRateEstimator(num_files=1, window=600.0)
        times = np.linspace(0.0, 100.0, 20, endpoint=False)
        estimator.observe(times, np.zeros(20, dtype=np.int64))
        assert estimator.rates(now=100.0)[0] == pytest.approx(0.2, rel=1e-9)

    def test_expiry_drops_old_chunks(self):
        estimator = StreamingRateEstimator(num_files=1, window=10.0)
        estimator.observe(np.array([0.0, 1.0]), np.array([0, 0]))
        estimator.observe(np.array([20.0]), np.array([0]))
        # The first chunk (last arrival at t=1) is outside [10, 20].
        assert estimator.rates()[0] == pytest.approx(1 / 10.0)


class TestDriftTrigger:
    def test_fires_on_rate_jump(self):
        estimator = StreamingRateEstimator(
            num_files=2,
            window=100.0,
            change_threshold=0.5,
            min_observations=5,
            file_ids=["a", "b"],
        )
        times, positions = uniform_chunk(0.0, 100.0, 0.1, 2)
        assert estimator.observe(times, positions) is None
        estimator.freeze_bin_rates()
        # File 0 triples its rate; file 1 stays put.  Offset file 1's
        # arrivals so no timestamps tie across the two files.
        raw_times = np.concatenate(
            [
                np.linspace(100.0, 200.0, 30, endpoint=False),
                np.linspace(100.5, 200.5, 10, endpoint=False),
            ]
        )
        raw_positions = np.concatenate(
            [np.zeros(30, dtype=np.int64), np.ones(10, dtype=np.int64)]
        )
        order = np.argsort(raw_times, kind="stable")
        event = estimator.observe(raw_times[order], raw_positions[order])
        assert isinstance(event, DriftEvent)
        assert event.bin_index == 2
        assert event.file_id in ("a", "b")
        assert event.relative_change > 0.5
        assert estimator.current_bin == 2
        assert estimator.events == [event]

    def test_min_observations_gates_the_trigger(self):
        estimator = StreamingRateEstimator(
            num_files=1, window=100.0, change_threshold=0.5, min_observations=50
        )
        times, positions = uniform_chunk(0.0, 100.0, 0.1, 1)
        estimator.observe(times, positions)
        estimator.freeze_bin_rates()
        # A large jump with only 10 in-window observations stays silent
        # once the old chunk expires.
        assert (
            estimator.observe(
                np.linspace(300.0, 400.0, 10), np.zeros(10, dtype=np.int64)
            )
            is None
        )

    def test_unreferenced_files_adopt_silently(self):
        estimator = StreamingRateEstimator(
            num_files=2, window=100.0, change_threshold=0.5, min_observations=5
        )
        # No freeze: the first eligible estimate becomes the reference
        # without firing.
        times, positions = uniform_chunk(0.0, 100.0, 0.1, 2)
        assert estimator.observe(times, positions) is None
        assert np.all(estimator.reference_rates > 0.0)

    def test_freeze_floor_applies(self):
        estimator = StreamingRateEstimator(num_files=3, window=10.0)
        frozen = estimator.freeze_bin_rates(
            np.array([0.0, 0.5, 0.0]), floor=0.01
        )
        assert frozen.min() == pytest.approx(0.01)
        assert frozen[1] == pytest.approx(0.5)
        assert np.array_equal(estimator.reference_rates, frozen)
