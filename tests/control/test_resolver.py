"""Tests for the warm-started online resolver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control import OnlineResolver
from repro.control.resolve import ActiveSetProjection, round_allocation
from repro.core.vectorized import VectorizedSystem
from repro.exceptions import ControlError


def model_rates(model):
    return np.asarray([spec.arrival_rate for spec in model.files])


class TestBootstrap:
    def test_bootstrap_establishes_carried_state(self, small_model):
        resolver = OnlineResolver(small_model)
        assert not resolver.bootstrapped
        report = resolver.bootstrap()
        assert resolver.bootstrapped
        assert report.kind == "bootstrap"
        assert not report.warm
        assert report.relaxed_objective > 0.0
        assert report.objective > 0.0
        assert report.placement is not None

    def test_integral_allocation_respects_capacity_and_k(self, small_model):
        resolver = OnlineResolver(small_model)
        report = resolver.bootstrap()
        cached = report.cached_chunks
        k_values = resolver.system.k_values
        assert cached.sum() <= small_model.cache_capacity
        assert np.all(cached >= 0)
        assert np.all(cached <= k_values)
        # The pinned scheduling probabilities realize exactly that
        # allocation: per-file pair sums equal k_i - cached_i.
        sums = resolver.system.file_sums(report.pinned_pi)
        assert np.allclose(sums, k_values - cached, atol=1e-6)

    def test_placement_build_can_be_disabled(self, small_model):
        resolver = OnlineResolver(small_model, build_placements=False)
        report = resolver.bootstrap()
        assert report.placement is None
        assert report.cached_chunks.sum() >= 0


class TestWarmResolve:
    def test_warm_resolve_reuses_carried_state(self, small_model):
        resolver = OnlineResolver(small_model)
        resolver.bootstrap()
        rates = model_rates(small_model) * 1.1
        report = resolver.resolve(rates, warm=True)
        assert report.kind == "warm"
        assert report.warm
        assert 0.0 < report.fraction_frozen < 1.0

    def test_warm_falls_back_to_cold_without_state(self, small_model):
        resolver = OnlineResolver(small_model)
        report = resolver.resolve(model_rates(small_model), warm=True)
        assert report.kind == "cold"
        assert not report.warm

    def test_commit_false_preserves_carried_state(self, small_model):
        resolver = OnlineResolver(small_model)
        resolver.bootstrap()
        rates = model_rates(small_model) * 1.3
        probe = resolver.resolve(rates, warm=False, commit=False)
        # The comparator ran cold against the carried z without touching
        # it: an identical warm resolve before/after must agree exactly.
        first = resolver.resolve(rates, warm=True, commit=False)
        second = resolver.resolve(rates, warm=True, commit=False)
        assert first.relaxed_objective == second.relaxed_objective
        assert np.array_equal(first.cached_chunks, second.cached_chunks)
        assert probe.kind == "cold"

    def test_validates_knobs(self, small_model):
        with pytest.raises(ControlError):
            OnlineResolver(small_model, parity_rtol=0.0)
        with pytest.raises(ControlError):
            OnlineResolver(small_model, max_sweeps=-1)


class TestActiveSetProjection:
    def test_rejects_wrong_reference_shape(self, small_model):
        system = VectorizedSystem(small_model)
        with pytest.raises(ControlError):
            ActiveSetProjection(system, np.zeros(3))

    def test_projection_matches_full_space_on_free_coordinates(self, small_model):
        system = VectorizedSystem(small_model)
        lower = np.zeros(system.num_files)
        upper = system.k_values.copy()
        reference = system.project(system.initial_pi(), lower, upper)
        projection = ActiveSetProjection(system, reference, epsilon=1e-9)
        if not projection.usable:
            pytest.skip("no frozen coordinates on this model")
        rng = np.random.default_rng(3)
        point = reference + 0.01 * rng.standard_normal(reference.size)
        projected = projection(point)
        # Feasibility: box bounds, per-file sums within [0, k], total at
        # the required capacity-complement.
        assert np.all(projected >= -1e-9) and np.all(projected <= 1 + 1e-9)
        sums = system.file_sums(projected)
        assert np.all(sums <= system.k_values + 1e-6)
        assert projected.sum() == pytest.approx(
            system.required_total(), abs=1e-6
        )


class TestRounding:
    def test_round_allocation_invariants(self, small_model):
        system = VectorizedSystem(small_model)
        rng = np.random.default_rng(11)
        for _ in range(20):
            pi = np.clip(rng.random(system.num_pairs), 0.0, 1.0)
            rounded = round_allocation(system, pi)
            assert rounded.sum() <= system.cache_capacity
            assert np.all(rounded >= 0)
            assert np.all(rounded <= system.k_values)
            # Never rounds above the fractional total the solver chose.
            fractional = np.clip(
                system.k_values - system.file_sums(pi), 0.0, system.k_values
            ).sum()
            assert rounded.sum() <= np.floor(fractional + 1e-9)
