"""Tests for the swap planner, the online controller and the builtins."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.registry import CONTROLLERS, WORKLOADS
from repro.api.scenario import Scenario
from repro.control import OnlineController, SwapPlanner
from repro.control.builtins import PeriodicController
from repro.exceptions import ControlError

allocations = st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=12)


def drift_stream(num_files=12, horizon=4000.0, seed=5):
    scenario = Scenario(
        workload="drift",
        num_files=num_files,
        cache_capacity=num_files,
        simulate=False,
        seed=seed,
        workload_params={"shift_every": 800.0},
    )
    built = WORKLOADS.get("drift").create(scenario)
    rng = np.random.default_rng(seed)
    return built.model(), built.sample(rng, horizon=horizon)


class TestSwapPlanner:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), budget=st.integers(min_value=0, max_value=10))
    def test_budget_is_never_exceeded(self, data, budget):
        desired = np.array(data.draw(allocations), dtype=np.int64)
        current = np.array(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=8),
                    min_size=desired.size,
                    max_size=desired.size,
                )
            ),
            dtype=np.int64,
        )
        priorities = np.array(
            data.draw(
                st.lists(
                    st.floats(0.0, 1.0, allow_nan=False),
                    min_size=desired.size,
                    max_size=desired.size,
                )
            )
        )
        plan = SwapPlanner(budget).plan(current, desired, priorities)
        assert plan.added_chunks <= budget
        # Drops are always applied in full; applied stays between
        # min(current, desired) and desired.
        assert np.all(plan.applied >= np.minimum(current, desired))
        assert np.all(plan.applied <= np.maximum(current, desired))
        assert np.all(plan.applied <= desired) or np.all(
            plan.applied <= np.maximum(current, desired)
        )
        assert plan.deferred_chunks == int(
            np.maximum(desired - current, 0).sum()
        ) - plan.added_chunks

    def test_unbounded_budget_applies_desired_exactly(self):
        current = np.array([3, 0, 2, 5])
        desired = np.array([1, 4, 2, 0])
        for planner in (SwapPlanner(None), SwapPlanner(float("inf"))):
            plan = planner.plan(current, desired)
            assert np.array_equal(plan.applied, desired)
            assert plan.deferred_chunks == 0

    def test_priorities_rank_the_grants(self):
        planner = SwapPlanner(3)
        plan = planner.plan(
            np.zeros(3, dtype=np.int64),
            np.array([2, 2, 2]),
            priorities=np.array([0.1, 0.9, 0.5]),
        )
        assert plan.applied[1] == 2  # hottest file fully granted
        assert plan.applied[2] == 1  # next one partially
        assert plan.applied[0] == 0
        assert plan.added_chunks == 3
        assert plan.deferred_chunks == 3

    def test_plans_are_deterministic(self):
        rng = np.random.default_rng(2)
        current = rng.integers(0, 6, size=20)
        desired = rng.integers(0, 6, size=20)
        priorities = rng.random(20)
        first = SwapPlanner(5).plan(current, desired, priorities)
        second = SwapPlanner(5).plan(current, desired, priorities)
        assert np.array_equal(first.applied, second.applied)

    def test_budgeted_plans_converge_to_desired(self):
        # With stationary desired rates, repeated bins drain the deferred
        # adds: after ceil(total_adds / budget) bins the cache matches the
        # re-solve exactly (infinite budget reaches it in one bin).
        desired = np.array([4, 3, 0, 5, 2])
        planner = SwapPlanner(3)
        current = np.zeros_like(desired)
        for _ in range(int(np.ceil(desired.sum() / 3))):
            current = planner.plan(current, desired).applied
        assert np.array_equal(current, desired)

    def test_validation(self):
        with pytest.raises(ControlError):
            SwapPlanner(-1)
        with pytest.raises(ControlError):
            SwapPlanner(2).plan(np.zeros(3), np.zeros(4))


class TestOnlineController:
    def test_stream_run_opens_bins_and_tracks_churn(self):
        model, stream = drift_stream()
        controller = OnlineController(
            model, window=600.0, churn_budget=4, build_placements=False
        )
        result = controller.run(stream, num_chunks=64)
        assert result.num_bins >= 2
        assert result.bins[0].report.kind == "bootstrap"
        assert result.num_drift_events == result.num_bins - 1
        assert result.churn_budget == 4
        for record in result.bins:
            assert record.churn.added_chunks <= 4
        applied = controller.applied_allocation
        assert np.array_equal(applied, result.bins[-1].churn.applied)
        assert applied.sum() <= model.cache_capacity

    def test_cold_controller_resolves_cold(self):
        model, stream = drift_stream()
        controller = OnlineController(model, warm=False, build_placements=False)
        result = controller.run(stream, num_chunks=64)
        assert not result.warm
        assert all(
            record.report.kind in ("bootstrap", "cold") for record in result.bins
        )

    def test_result_serializes(self):
        from repro.api.serialize import json_dumps

        model, stream = drift_stream()
        controller = OnlineController(model, build_placements=False)
        result = controller.run(stream, num_chunks=32)
        payload = result.to_dict()
        assert payload["num_bins"] == result.num_bins
        json_dumps(payload)  # must not raise
        assert "bin 1" in result.summary()

    def test_process_bin_accepts_mapping_and_vector(self, small_model):
        controller = OnlineController(small_model)
        by_id = controller.process_bin({"file-0": 0.2})
        assert by_id.report.kind == "bootstrap"
        by_vector = controller.process_bin(np.full(small_model.num_files, 0.05))
        assert by_vector.report.kind == "warm"
        assert by_vector.index == by_id.index + 1

    def test_process_bin_validates_inputs(self, small_model):
        controller = OnlineController(small_model)
        with pytest.raises(ControlError):
            controller.process_bin({"no-such-file": 1.0})
        with pytest.raises(ControlError):
            controller.process_bin(np.ones(small_model.num_files + 1))

    def test_double_bootstrap_is_rejected(self, small_model):
        controller = OnlineController(small_model)
        controller.bootstrap()
        with pytest.raises(ControlError):
            controller.bootstrap()

    def test_stream_positions_require_model_files(self, small_model):
        _, stream = drift_stream(num_files=12)
        controller = OnlineController(small_model)
        with pytest.raises(ControlError):
            controller.run(stream)


class TestBuiltins:
    def test_registry_lists_the_builtin_controllers(self):
        names = CONTROLLERS.names()
        assert {"online", "cold", "periodic"} <= set(names)

    def test_online_and_cold_builders(self, small_model):
        online = CONTROLLERS.get("online").build(small_model, churn_budget=2)
        assert isinstance(online, OnlineController)
        assert online.planner.churn_budget == 2
        cold = CONTROLLERS.get("cold").build(small_model)
        assert isinstance(cold, OnlineController)

    def test_periodic_controller_opens_bins_on_the_interval(self):
        model, stream = drift_stream()
        controller = PeriodicController(model, interval=1000.0, window=600.0)
        result = controller.run(stream, num_chunks=64)
        # Bootstrap plus roughly one bin per interval, never drift bins.
        assert result.num_drift_events == 0
        assert result.num_bins >= 3
        opened = [record.opened_at for record in result.bins[1:]]
        assert all(
            later - earlier >= 1000.0 - 1e-9
            for earlier, later in zip(opened, opened[1:])
        )

    def test_periodic_validates_interval(self, small_model):
        with pytest.raises(ControlError):
            PeriodicController(small_model, interval=0.0)

    def test_controller_spec_rejects_unknown_params(self, small_model):
        from repro.exceptions import ScenarioError

        spec = CONTROLLERS.get("online")
        with pytest.raises(ScenarioError, match="no_such_knob"):
            spec.validate_params({"no_such_knob": 1})
