"""Tests for the LRU, exact-caching and static baseline policies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import (
    ExactCachingPolicy,
    exact_caching_placement,
    popularity_allocation,
)
from repro.baselines.lru import LRUCache, LRUChunkCachingPolicy
from repro.baselines.static import (
    exact_vs_functional_bounds,
    no_cache_placement,
    popularity_whole_file_placement,
    proportional_placement,
)
from repro.exceptions import CacheError, ModelError


class TestLRUCache:
    def test_hit_miss_and_eviction_order(self):
        cache = LRUCache(capacity=3)
        assert not cache.access("a")
        assert not cache.access("b")
        assert not cache.access("c")
        assert cache.access("a")          # a becomes most recently used
        assert not cache.access("d")      # evicts b (the LRU entry)
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache
        assert cache.stats.evictions == 1
        assert cache.stats.hit_ratio == pytest.approx(1 / 5)

    def test_sized_entries(self):
        cache = LRUCache(capacity=10)
        cache.insert("big", size=6)
        cache.insert("medium", size=4)
        cache.insert("small", size=2)     # evicts "big"
        assert "big" not in cache
        assert cache.used == 6

    def test_oversized_entry_not_cached(self):
        cache = LRUCache(capacity=4)
        cache.insert("huge", size=10)
        assert "huge" not in cache
        assert cache.used == 0

    def test_peek_does_not_touch_recency(self):
        cache = LRUCache(capacity=2)
        cache.insert("a")
        cache.insert("b")
        cache.peek("a")
        cache.insert("c")  # evicts "a" because peek did not refresh it
        assert "a" not in cache

    def test_explicit_evict_and_clear(self):
        cache = LRUCache(capacity=2)
        cache.insert("a")
        assert cache.evict("a")
        assert not cache.evict("a")
        cache.insert("b")
        cache.clear()
        assert len(cache) == 0 and cache.used == 0

    def test_validation(self):
        with pytest.raises(CacheError):
            LRUCache(capacity=-1)
        with pytest.raises(CacheError):
            LRUCache(capacity=2).access("a", size=0)

    @given(
        operations=st.lists(
            st.tuples(st.integers(min_value=0, max_value=9), st.integers(1, 3)),
            min_size=1,
            max_size=200,
        ),
        capacity=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_capacity_never_exceeded(self, operations, capacity):
        cache = LRUCache(capacity=capacity)
        for key, size in operations:
            cache.access(key, size=size)
            assert cache.used <= capacity
            assert cache.used == sum(
                size_ for size_ in cache._entries.values()  # noqa: SLF001
            )


class TestLRUChunkCachingPolicy:
    def test_whole_object_granularity(self):
        policy = LRUChunkCachingPolicy(
            capacity_chunks=8, chunks_per_file={"a": 4, "b": 4, "c": 4}
        )
        hit, cached = policy.on_request("a")
        assert not hit and cached == 0
        hit, cached = policy.on_request("a")
        assert hit and cached == 4
        policy.on_request("b")
        policy.on_request("c")  # evicts "a"
        assert policy.cached_chunks("a") == 0
        assert set(policy.cached_files()) == {"b", "c"}

    def test_warm_and_unknown_file(self):
        policy = LRUChunkCachingPolicy(capacity_chunks=8, chunks_per_file={"a": 4})
        policy.warm(["a"])
        assert policy.cached_chunks("a") == 4
        with pytest.raises(CacheError):
            policy.on_request("unknown")

    def test_replication_inflates_footprint(self):
        policy = LRUChunkCachingPolicy(
            capacity_chunks=8, chunks_per_file={"a": 4, "b": 4}, replication=2
        )
        policy.on_request("a")
        policy.on_request("b")  # 8 chunks each with replication -> "a" evicted
        assert policy.cached_chunks("a") == 0


class TestExactCaching:
    def test_popularity_allocation_fills_cache(self, small_model):
        allocation = popularity_allocation(small_model)
        assert sum(allocation.values()) == small_model.cache_capacity
        # The hottest file gets at least as much as the coldest.
        assert allocation["file-0"] >= allocation["file-5"]

    def test_exact_policy_excludes_cached_nodes(self, small_model):
        policy = ExactCachingPolicy(small_model, {"file-0": 2})
        usable = policy.usable_nodes("file-0")
        spec = small_model.file("file-0")
        assert len(usable) == spec.n - 2
        assert set(usable) <= set(spec.placement)

    def test_exact_policy_validation(self, small_model):
        with pytest.raises(ModelError):
            ExactCachingPolicy(small_model, {"file-0": 9})
        with pytest.raises(ModelError):
            ExactCachingPolicy(
                small_model, {spec.file_id: spec.k for spec in small_model.files}
            )

    def test_exact_placement_structure(self, small_model):
        placement = exact_caching_placement(small_model)
        placement.validate_against(small_model)
        assert placement.total_cached_chunks == small_model.cache_capacity

    def test_functional_never_worse_than_exact(self, small_model):
        # Same per-file allocation; functional caching keeps every node
        # usable, so its per-file bound can never exceed exact caching's.
        allocation = popularity_allocation(small_model)
        comparison = exact_vs_functional_bounds(small_model, allocation)
        for file_id, bounds in comparison.items():
            assert bounds["functional"] <= bounds["exact"] + 1e-9, file_id


class TestStaticPlacements:
    def test_no_cache_placement(self, small_model):
        placement = no_cache_placement(small_model)
        assert placement.total_cached_chunks == 0
        placement.validate_against(small_model)

    def test_whole_file_placement_caches_hottest(self, small_model):
        placement = popularity_whole_file_placement(small_model)
        cached = placement.cached_chunks()
        # file-0 is the hottest and k = 3 <= capacity 5, so it is fully cached.
        assert cached["file-0"] == 3
        assert placement.total_cached_chunks <= small_model.cache_capacity

    def test_proportional_placement_uses_full_cache(self, small_model):
        placement = proportional_placement(small_model)
        assert placement.total_cached_chunks == small_model.cache_capacity
        placement.validate_against(small_model)

    def test_optimized_beats_all_baselines(self, small_model):
        from repro.core.algorithm import CacheOptimizer

        optimized = CacheOptimizer(small_model, tolerance=0.001).optimize().placement
        for baseline in (
            no_cache_placement(small_model),
            popularity_whole_file_placement(small_model),
            proportional_placement(small_model),
            exact_caching_placement(small_model),
        ):
            assert optimized.objective <= baseline.objective + 1e-6
