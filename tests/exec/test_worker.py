"""Tests for the per-worker warm ``VectorizedSystem`` state."""

from __future__ import annotations

import numpy as np

from repro.core.vectorized import VectorizedSystem
from repro.exec import reset_worker_state, shared_system, worker_state


def test_shared_system_rebinds_one_compiled_instance(small_model):
    reset_worker_state()
    first = shared_system(small_model)
    assert isinstance(first, VectorizedSystem)
    # Same structure -> the warm instance is rebound, not recompiled.
    second = shared_system(small_model)
    assert second is first


def test_shared_system_matches_fresh_compile(small_model):
    reset_worker_state()
    shared_system(small_model)  # warm it once
    warm = shared_system(small_model)
    fresh = VectorizedSystem(small_model)
    np.testing.assert_array_equal(warm.arrival_rates, fresh.arrival_rates)


def test_reset_worker_state_drops_the_system(small_model):
    reset_worker_state()
    first = shared_system(small_model)
    reset_worker_state()
    assert worker_state() == {}
    assert shared_system(small_model) is not first
