"""End-to-end determinism and caching of the ported experiment sweeps.

The ISSUE-10 guarantee: ``jobs=1`` and ``jobs=4`` produce *bit-identical*
experiment results (counters exact, latencies identical), and a warm
result cache serves repeated sweeps without recomputation while version
bumps and kernel-backend switches invalidate it.
"""

from __future__ import annotations

import pytest

import repro
import repro.kernels
from repro.api import get_experiment
from repro.api.serialize import json_dumps, to_jsonable
from repro.exec import ResultCache

#: Reduced fig11 sweep for the cache-behaviour tests (fractions of a second).
TINY_FIG11 = dict(
    aggregate_rates=(0.5, 1.0),
    num_objects=50,
    duration_s=60.0,
)


def fingerprint(result) -> str:
    return json_dumps(to_jsonable(result))


@pytest.mark.parametrize("name", ["fig11", "fig12"])
def test_fast_sweeps_bit_equal_across_jobs(name):
    spec = get_experiment(name)
    serial = spec.run(scale="fast", jobs=1)
    parallel = spec.run(scale="fast", jobs=4)
    assert fingerprint(parallel) == fingerprint(serial)


def test_fig11_cache_hit_serves_identical_result(tmp_path):
    cache = ResultCache(tmp_path)
    fresh = get_experiment("fig11").run(scale="fast", cache=cache, **TINY_FIG11)
    assert cache.stats.misses == 2 and cache.stats.stores == 2

    cached = get_experiment("fig11").run(scale="fast", cache=cache, **TINY_FIG11)
    assert cache.stats.hits == 2
    assert cache.stats.stores == 2  # nothing recomputed, nothing re-stored
    assert fingerprint(cached) == fingerprint(fresh)


def test_fig11_cache_misses_on_parameter_change(tmp_path):
    cache = ResultCache(tmp_path)
    get_experiment("fig11").run(scale="fast", cache=cache, **TINY_FIG11)
    get_experiment("fig11").run(scale="fast", cache=cache, **{**TINY_FIG11, "seed": 1})
    assert cache.stats.hits == 0
    assert cache.stats.misses == 4


def test_fig11_cache_invalidates_on_version_bump(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    get_experiment("fig11").run(scale="fast", cache=cache, **TINY_FIG11)
    monkeypatch.setattr(repro, "__version__", "0.0.0-test")
    get_experiment("fig11").run(scale="fast", cache=cache, **TINY_FIG11)
    assert cache.stats.hits == 0
    assert cache.stats.misses == 4


def test_fig11_cache_invalidates_on_backend_change(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    get_experiment("fig11").run(scale="fast", cache=cache, **TINY_FIG11)
    monkeypatch.setattr(
        repro.kernels, "active_kernel_backend_name", lambda: "other-backend"
    )
    get_experiment("fig11").run(scale="fast", cache=cache, **TINY_FIG11)
    assert cache.stats.hits == 0
    assert cache.stats.misses == 4
