"""Unit tests for the content-addressed result cache (``repro.exec.cache``)."""

from __future__ import annotations

from pathlib import Path

import repro
import repro.kernels
from repro.api.scenario import Scenario
from repro.api.serialize import json_dumps
from repro.api.session import CachedRunResult, Session
from repro.exec import (
    CACHE_DIR_ENV_VAR,
    ResultCache,
    default_cache_dir,
    resolve_cache,
)
from repro.exec.cache import experiment_point_key, scenario_key


def test_key_is_order_insensitive_and_deterministic(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.key_for({"a": 1, "b": 2}) == cache.key_for({"b": 2, "a": 1})
    assert cache.key_for({"a": 1}) != cache.key_for({"a": 2})
    assert len(cache.key_for("x")) == 64  # sha256 hex


def test_roundtrip_stats_len_and_clear(tmp_path):
    cache = ResultCache(tmp_path)
    key = cache.key_for({"point": 1})
    assert cache.get(key) is None
    assert cache.stats.misses == 1

    path = cache.put(key, {"value": 42})
    assert path.exists()
    assert path.parent.name == key[:2]
    assert cache.get(key) == {"value": 42}
    assert cache.stats.as_dict() == {"hits": 1, "misses": 1, "stores": 1}
    assert len(cache) == 1
    assert cache.clear() == 1
    assert len(cache) == 0


def test_corrupt_entry_is_a_miss_and_removed(tmp_path):
    cache = ResultCache(tmp_path)
    key = cache.key_for("corrupt")
    cache.put(key, [1, 2, 3])
    cache.path_for(key).write_text("{truncated")
    assert cache.get(key) is None
    assert not cache.path_for(key).exists()


def test_resolve_cache_variants(tmp_path, monkeypatch):
    assert resolve_cache(None) is None
    assert resolve_cache(False) is None
    prebuilt = ResultCache(tmp_path)
    assert resolve_cache(prebuilt) is prebuilt
    assert resolve_cache(str(tmp_path / "sub")).directory == tmp_path / "sub"
    monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "env"))
    assert resolve_cache(True).directory == tmp_path / "env"


def test_default_cache_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "custom"))
    assert default_cache_dir() == tmp_path / "custom"
    monkeypatch.delenv(CACHE_DIR_ENV_VAR)
    assert default_cache_dir() == Path.home() / ".cache" / "repro"


def test_scenario_key_invalidates_on_version_bump(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    scenario = Scenario(num_files=10, cache_capacity=5)
    key = scenario_key(cache, scenario)
    assert key == scenario_key(cache, scenario)
    assert key != scenario_key(cache, Scenario(num_files=10, cache_capacity=6))
    monkeypatch.setattr(repro, "__version__", "0.0.0-test")
    assert key != scenario_key(cache, scenario)


def test_experiment_point_key_invalidation(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    params = {"seed": 2016, "num_objects": 100}
    key = experiment_point_key(cache, "fig11", 0.5, params)
    assert key == experiment_point_key(cache, "fig11", 0.5, params)
    # Anything that shapes the result must change the key ...
    assert key != experiment_point_key(cache, "fig11", 1.0, params)
    assert key != experiment_point_key(cache, "fig10", 0.5, params)
    assert key != experiment_point_key(cache, "fig11", 0.5, {**params, "seed": 1})
    # ... including the package version and the active kernel backend.
    monkeypatch.setattr(repro, "__version__", "0.0.0-test")
    bumped = experiment_point_key(cache, "fig11", 0.5, params)
    assert bumped != key
    monkeypatch.setattr(
        repro.kernels, "active_kernel_backend_name", lambda: "other-backend"
    )
    assert experiment_point_key(cache, "fig11", 0.5, params) != bumped


def test_session_serves_bit_equal_cached_results(tmp_path):
    scenario = Scenario(num_files=20, cache_capacity=10, seed=7)
    session = Session(cache=ResultCache(tmp_path))

    fresh = session.run(scenario)
    cached = session.run(scenario)
    assert isinstance(cached, CachedRunResult)
    assert cached.from_cache
    assert json_dumps(cached.to_dict()) == json_dumps(fresh.to_dict())
    assert session.cache.stats.hits == 1
    assert session.cache.stats.stores == 1

    # A different scenario must miss.
    other = session.run(Scenario(num_files=20, cache_capacity=10, seed=8))
    assert not isinstance(other, CachedRunResult)
