"""Unit tests for ``repro.exec.sweep``: determinism, ordering, caching hooks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec import (
    ResultCache,
    SweepSpec,
    available_cpus,
    fork_available,
    resolve_jobs,
    spawn_point_seeds,
    sweep_map,
    sweep_scan,
)


def square(x):
    return x * x


def draw_normals(seed):
    """A point function whose result is pure RNG, keyed by the point."""
    return np.random.default_rng(seed).normal(size=4).tolist()


def test_available_cpus_positive():
    assert available_cpus() >= 1


def test_resolve_jobs_defaults_and_caps():
    assert resolve_jobs(None, 8) == min(available_cpus(), 8)
    assert resolve_jobs(4, 2) == 2 if fork_available() else 1
    assert resolve_jobs(1, 100) == 1
    assert resolve_jobs(None, 0) == 1


def test_resolve_jobs_rejects_nonpositive():
    with pytest.raises(ValueError):
        resolve_jobs(0, 5)
    with pytest.raises(ValueError):
        resolve_jobs(-2, 5)


def test_spawn_point_seeds_deterministic_and_prefix_stable():
    first = spawn_point_seeds(2016, 5)
    assert first == spawn_point_seeds(2016, 5)
    assert len(set(first)) == 5
    # Growing the sweep must not reshuffle earlier points' entropy.
    assert spawn_point_seeds(2016, 8)[:5] == first
    assert spawn_point_seeds(17, 5) != first


def test_sweep_map_empty_points():
    assert sweep_map(square, [], jobs=4) == []


def test_sweep_map_serial_matches_parallel():
    points = list(range(23))
    serial = sweep_map(square, points, jobs=1)
    parallel = sweep_map(square, points, jobs=4)
    assert serial == [p * p for p in points]
    assert parallel == serial


def test_sweep_map_rng_bit_equal_across_jobs():
    seeds = spawn_point_seeds(123, 12)
    serial = sweep_map(draw_normals, seeds, jobs=1)
    parallel = sweep_map(draw_normals, seeds, jobs=3)
    assert parallel == serial  # exact float equality, not approx


def test_sweep_map_unordered_same_content():
    points = list(range(11))
    unordered = sweep_map(square, points, jobs=3, ordered=False)
    assert sorted(unordered) == [p * p for p in points]


def test_sweep_map_chunk_size_validation():
    with pytest.raises(ValueError):
        sweep_map(square, [1, 2, 3], jobs=2, chunk_size=0)


def test_sweep_map_progress_reports_from_parent():
    seen = []

    def record(completed, total, point):
        seen.append((completed, total, point))

    points = list(range(6))
    sweep_map(square, points, jobs=3, progress=record)
    # The callback runs in the parent, once per point, with a monotone
    # completed counter (completion order may differ from point order).
    assert [completed for completed, _, _ in seen] == list(range(1, 7))
    assert all(total == 6 for _, total, _ in seen)
    assert sorted(point for _, _, point in seen) == points


def test_sweep_map_cache_requires_key(tmp_path):
    with pytest.raises(ValueError):
        sweep_map(square, [1, 2], cache=ResultCache(tmp_path))


def test_sweep_map_cache_roundtrip(tmp_path):
    cache = ResultCache(tmp_path)
    calls = []

    def tracked(x):
        calls.append(x)
        return {"value": x * x}

    def key(cache_obj, point, index):
        return cache_obj.key_for({"test": "roundtrip", "point": point})

    points = [1, 2, 3, 4]
    first = sweep_map(tracked, points, jobs=1, cache=cache, cache_key=key)
    assert calls == points
    assert cache.stats.misses == 4 and cache.stats.stores == 4

    second = sweep_map(tracked, points, jobs=1, cache=cache, cache_key=key)
    assert calls == points  # no recomputation: every point was a hit
    assert cache.stats.hits == 4
    assert second == first


def test_sweep_map_cache_encode_decode(tmp_path):
    cache = ResultCache(tmp_path)

    def key(cache_obj, point, index):
        return cache_obj.key_for({"test": "codec", "point": point})

    kwargs = dict(
        cache=cache,
        cache_key=key,
        encode=lambda result: {"wrapped": result},
        decode=lambda payload: payload["wrapped"],
    )
    fresh = sweep_map(square, [2, 3], jobs=1, **kwargs)
    cached = sweep_map(square, [2, 3], jobs=1, **kwargs)
    assert cached == fresh == [4, 9]


def test_sweep_scan_carries_state_in_order():
    def accumulate(point, carry):
        carry = (carry or 0) + point
        return carry, carry

    assert sweep_scan(accumulate, [1, 2, 3, 4]) == [1, 3, 6, 10]


def test_sweep_scan_progress():
    seen = []
    sweep_scan(
        lambda point, carry: (point, carry),
        ["a", "b"],
        progress=lambda completed, total, point: seen.append((completed, total)),
    )
    assert seen == [(1, 2), (2, 2)]


def test_sweep_spec_run_matches_sweep_map():
    points = list(range(9))
    spec = SweepSpec(fn=square, points=points, jobs=2)
    assert spec.run() == sweep_map(square, points, jobs=2)
