"""Tests for the vectorised system: agreement with the reference implementation
and correctness of the polytope projection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bound import (
    initial_solution,
    node_moments,
    objective_gradient_pi,
    per_file_bounds,
    system_objective,
)
from repro.core.vectorized import VectorizedSystem
from repro.exceptions import InfeasibleError


class TestAgreementWithReference:
    def test_objective_matches_dict_implementation(self, small_model):
        system = VectorizedSystem(small_model)
        state = initial_solution(small_model)
        pi = system.from_state(state)
        z = np.asarray(state.z_values)
        vectorised = system.objective(pi, z)
        reference = system_objective(small_model, state, use_given_z=True)
        assert vectorised == pytest.approx(reference, rel=1e-9)

    def test_per_file_bounds_match(self, small_model):
        system = VectorizedSystem(small_model)
        state = initial_solution(small_model)
        pi = system.from_state(state)
        z = np.asarray(state.z_values)
        vectorised = system.per_file_bounds(pi, z)
        reference = per_file_bounds(small_model, state, use_given_z=True)
        assert np.allclose(vectorised, reference)

    def test_node_rates_match_model(self, small_model):
        system = VectorizedSystem(small_model)
        state = initial_solution(small_model)
        pi = system.from_state(state)
        rates = system.node_rates(pi)
        reference = small_model.node_arrival_rates(state.probabilities)
        for position, node_id in enumerate(small_model.node_ids):
            assert rates[position] == pytest.approx(reference[node_id])

    def test_queue_moments_match(self, small_model):
        system = VectorizedSystem(small_model)
        state = initial_solution(small_model)
        pi = system.from_state(state)
        mean, variance = system.queue_moments(system.node_rates(pi))
        reference = node_moments(small_model, state)
        for position, node_id in enumerate(small_model.node_ids):
            assert mean[position] == pytest.approx(reference[node_id].mean)
            assert variance[position] == pytest.approx(reference[node_id].variance)

    def test_gradient_matches_reference(self, small_model):
        system = VectorizedSystem(small_model)
        state = initial_solution(small_model)
        pi = system.from_state(state)
        z = np.asarray(state.z_values)
        _, gradient = system.objective_and_gradient(pi, z)
        reference = objective_gradient_pi(small_model, state)
        for pair_index in range(system.num_pairs):
            file_position = int(system.pair_file[pair_index])
            node_id = small_model.node_ids[int(system.pair_node[pair_index])]
            assert gradient[pair_index] == pytest.approx(
                reference[file_position][node_id], rel=1e-6
            )

    def test_gradient_matches_finite_differences(self, small_model):
        system = VectorizedSystem(small_model)
        pi = system.initial_pi() * 0.9
        z = system.optimal_z(pi)
        _, gradient = system.objective_and_gradient(pi, z)
        eps = 1e-6
        for pair_index in range(0, system.num_pairs, 7):
            perturbed_up = pi.copy()
            perturbed_up[pair_index] += eps
            perturbed_down = pi.copy()
            perturbed_down[pair_index] -= eps
            numeric = (
                system.objective(perturbed_up, z) - system.objective(perturbed_down, z)
            ) / (2 * eps)
            assert gradient[pair_index] == pytest.approx(numeric, rel=1e-3, abs=1e-8)

    def test_state_round_trip(self, small_model):
        system = VectorizedSystem(small_model)
        state = initial_solution(small_model)
        pi = system.from_state(state)
        rebuilt = system.to_state(pi, np.asarray(state.z_values))
        for original, round_tripped in zip(state.probabilities, rebuilt.probabilities):
            assert original == pytest.approx(round_tripped)


class TestOptimalZ:
    def test_vectorised_z_minimises_objective(self, small_model):
        system = VectorizedSystem(small_model)
        pi = system.initial_pi()
        z_star = system.optimal_z(pi)
        best = system.objective(pi, z_star)
        for delta in (-0.5, -0.1, 0.1, 0.5, 2.0):
            candidate = np.maximum(z_star + delta, 0.0)
            assert best <= system.objective(pi, candidate) + 1e-6

    def test_zero_probabilities_give_zero_z(self, small_model):
        system = VectorizedSystem(small_model)
        pi = np.zeros(system.num_pairs)
        assert np.allclose(system.optimal_z(pi), 0.0)


class TestProjection:
    def test_projection_is_feasible(self, small_model, rng):
        system = VectorizedSystem(small_model)
        lower = np.zeros(system.num_files)
        upper = system.k_values.copy()
        for _ in range(10):
            point = rng.normal(0.5, 1.0, size=system.num_pairs)
            projected = system.project(point, lower, upper)
            assert np.all(projected >= -1e-9)
            assert np.all(projected <= 1.0 + 1e-9)
            sums = system.file_sums(projected)
            assert np.all(sums <= upper + 1e-6)
            assert np.all(sums >= lower - 1e-6)
            assert projected.sum() >= system.required_total() - 1e-6

    def test_projection_is_idempotent(self, small_model, rng):
        system = VectorizedSystem(small_model)
        lower = np.zeros(system.num_files)
        upper = system.k_values.copy()
        point = rng.normal(0.5, 1.0, size=system.num_pairs)
        once = system.project(point, lower, upper)
        twice = system.project(once, lower, upper)
        assert np.allclose(once, twice, atol=1e-6)

    def test_projection_of_feasible_point_is_identity(self, small_model):
        system = VectorizedSystem(small_model)
        lower = np.zeros(system.num_files)
        upper = system.k_values.copy()
        pi = system.initial_pi()  # feasible with d = 0
        projected = system.project(pi, lower, upper)
        assert np.allclose(projected, pi, atol=1e-6)

    def test_projection_respects_equal_bounds(self, small_model):
        # With per-file totals pinned at 2 the cache must hold one chunk per
        # file, so the capacity needs to be at least 6 for feasibility.
        system = VectorizedSystem(small_model.copy_with_cache_capacity(6))
        lower = np.full(system.num_files, 2.0)
        upper = np.full(system.num_files, 2.0)
        projected = system.project(system.initial_pi() * 0.1, lower, upper)
        assert np.allclose(system.file_sums(projected), 2.0, atol=1e-5)

    def test_projection_infeasible_bounds_raise(self, small_model):
        system = VectorizedSystem(small_model)
        lower = np.full(system.num_files, 3.0)
        upper = np.full(system.num_files, 2.0)
        with pytest.raises(InfeasibleError):
            system.project(system.initial_pi(), lower, upper)

    def test_projection_infeasible_capacity_raises(self, small_model):
        # Force an impossible situation: every file's total capped below what
        # the cache constraint requires.
        system = VectorizedSystem(small_model.copy_with_cache_capacity(0))
        lower = np.zeros(system.num_files)
        upper = np.full(system.num_files, 1.0)  # < k = 3 per file, C = 0
        with pytest.raises(InfeasibleError):
            system.project(system.initial_pi(), lower, upper)

    def test_projection_minimises_distance_on_simple_case(self, small_model):
        # With generous capacity, the projection of an in-box point that
        # violates nothing must be the point itself; moving any coordinate
        # would only add distance.
        system = VectorizedSystem(small_model.copy_with_cache_capacity(18))
        lower = np.zeros(system.num_files)
        upper = system.k_values.copy()
        point = np.full(system.num_pairs, 0.2)
        projected = system.project(point, lower, upper)
        assert np.allclose(projected, point, atol=1e-9)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_property_projection_feasibility(self, small_model, seed):
        system = VectorizedSystem(small_model)
        rng = np.random.default_rng(seed)
        point = rng.normal(0.0, 2.0, size=system.num_pairs)
        lower = np.zeros(system.num_files)
        upper = system.k_values.copy()
        projected = system.project(point, lower, upper)
        sums = system.file_sums(projected)
        assert np.all(projected >= -1e-9) and np.all(projected <= 1 + 1e-9)
        assert np.all(sums <= upper + 1e-5)
        assert projected.sum() >= system.required_total() - 1e-5


class TestRebind:
    def test_rebind_updates_capacity_and_rates(self, small_model):
        system = VectorizedSystem(small_model)
        doubled = small_model.copy_with_arrival_rates(
            [spec.arrival_rate * 2.0 for spec in small_model.files]
        ).copy_with_cache_capacity(small_model.cache_capacity + 3)
        assert system.rebind(doubled) is system
        assert system.cache_capacity == small_model.cache_capacity + 3
        assert np.allclose(
            system.arrival_rates,
            [spec.arrival_rate * 2.0 for spec in small_model.files],
        )
        # Pair aggregations were refreshed alongside the rates.
        assert np.allclose(system.pair_rates, system.arrival_rates[system.pair_file])

    def test_rebind_rejects_different_placements(self, small_model):
        from repro.core.model import FileSpec, StorageSystemModel
        from repro.exceptions import OptimizationError

        system = VectorizedSystem(small_model)
        files = []
        for spec in small_model.files:
            placement = list(spec.placement)
            placement[0], placement[-1] = placement[-1], placement[0]
            # Same node multiset per file but rotated order across files
            # changes the compiled pair structure for at least one file.
            files.append(
                FileSpec(
                    file_id=spec.file_id,
                    n=spec.n,
                    k=spec.k,
                    placement=placement,
                    arrival_rate=spec.arrival_rate,
                    chunk_size=spec.chunk_size,
                )
            )
        other = StorageSystemModel(
            services=small_model.services,
            files=files,
            cache_capacity=small_model.cache_capacity,
        )
        with pytest.raises(OptimizationError):
            system.rebind(other)

    def test_rebind_rejects_different_file_count(self, small_model):
        from repro.core.model import StorageSystemModel
        from repro.exceptions import OptimizationError

        system = VectorizedSystem(small_model)
        fewer = StorageSystemModel(
            services=small_model.services,
            files=small_model.files[:-1],
            cache_capacity=small_model.cache_capacity,
        )
        with pytest.raises(OptimizationError):
            system.rebind(fewer)
