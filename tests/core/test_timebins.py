"""Tests for the time-bin scheduler and cache-content deltas."""

from __future__ import annotations

import pytest

from repro.core.timebins import TimeBin, TimeBinScheduler, bins_from_rate_table
from repro.exceptions import ModelError


class TestTimeBin:
    def test_validation(self):
        with pytest.raises(ModelError):
            TimeBin(index=1, duration=0.0, arrival_rates={})
        with pytest.raises(ModelError):
            TimeBin(index=1, duration=1.0, arrival_rates={"f": -0.1})

    def test_bins_from_rate_table(self):
        bins = bins_from_rate_table([{"a": 0.1}, {"a": 0.2}], duration=50.0)
        assert [b.index for b in bins] == [1, 2]
        assert bins[1].arrival_rates["a"] == pytest.approx(0.2)
        assert bins[0].duration == 50.0


class TestTimeBinScheduler:
    def test_three_bin_run(self, small_model):
        scheduler = TimeBinScheduler(small_model, tolerance=0.01)
        base = {spec.file_id: spec.arrival_rate for spec in small_model.files}
        hot_second_bin = dict(base)
        hot_second_bin["file-5"] = 0.12  # file-5 becomes the hottest
        bins = [
            TimeBin(index=1, duration=100.0, arrival_rates=base),
            TimeBin(index=2, duration=100.0, arrival_rates=hot_second_bin),
            TimeBin(index=3, duration=100.0, arrival_rates=base),
        ]
        outcomes = scheduler.process_bins(bins)
        assert len(outcomes) == 3
        assert scheduler.current_placement is outcomes[-1].placement
        for outcome, time_bin in zip(outcomes, bins):
            outcome.placement.validate_against(
                small_model.copy_with_arrival_rates(time_bin.arrival_rates)
            )
            assert outcome.placement.time_bin == time_bin.index

    def test_first_bin_delta_counts_all_additions(self, small_model):
        scheduler = TimeBinScheduler(small_model, tolerance=0.01)
        base = {spec.file_id: spec.arrival_rate for spec in small_model.files}
        outcome = scheduler.process_bin(
            TimeBin(index=1, duration=100.0, arrival_rates=base)
        )
        assert outcome.delta.chunks_pending == outcome.placement.total_cached_chunks
        assert outcome.delta.chunks_removed == 0

    def test_deltas_are_consistent_with_placements(self, small_model):
        scheduler = TimeBinScheduler(small_model, tolerance=0.01)
        base = {spec.file_id: spec.arrival_rate for spec in small_model.files}
        shifted = dict(base)
        shifted["file-0"] = 0.001
        shifted["file-5"] = 0.15
        first = scheduler.process_bin(TimeBin(index=1, duration=10.0, arrival_rates=base))
        second = scheduler.process_bin(TimeBin(index=2, duration=10.0, arrival_rates=shifted))
        before = first.placement.cached_chunks()
        after = second.placement.cached_chunks()
        for file_id, removed in second.delta.removed.items():
            assert before[file_id] - after[file_id] == removed
        for file_id, added in second.delta.added_on_access.items():
            assert after[file_id] - before[file_id] == added

    def test_history_is_copied(self, small_model):
        scheduler = TimeBinScheduler(small_model, tolerance=0.01)
        base = {spec.file_id: spec.arrival_rate for spec in small_model.files}
        scheduler.process_bin(TimeBin(index=1, duration=10.0, arrival_rates=base))
        history = scheduler.history
        history.clear()
        assert len(scheduler.history) == 1
