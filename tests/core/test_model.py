"""Tests for the storage-system model."""

from __future__ import annotations

import pytest

from repro.core.model import FileSpec, StorageSystemModel, build_random_placement_model
from repro.exceptions import ModelError
from repro.queueing.distributions import ExponentialService


class TestFileSpec:
    def test_valid_spec(self):
        spec = FileSpec("f", n=5, k=3, placement=(0, 1, 2, 3, 4), arrival_rate=0.1)
        assert spec.redundancy_factor == pytest.approx(5 / 3)
        assert spec.size_bytes == 3  # defaults to k * chunk_size (chunk_size=1)

    def test_placement_length_must_match_n(self):
        with pytest.raises(ModelError):
            FileSpec("f", n=5, k=3, placement=(0, 1, 2), arrival_rate=0.1)

    def test_duplicate_placement_rejected(self):
        with pytest.raises(ModelError):
            FileSpec("f", n=3, k=2, placement=(0, 0, 1), arrival_rate=0.1)

    def test_k_greater_than_n_rejected(self):
        with pytest.raises(ModelError):
            FileSpec("f", n=2, k=3, placement=(0, 1), arrival_rate=0.1)

    def test_negative_rate_rejected(self):
        with pytest.raises(ModelError):
            FileSpec("f", n=3, k=2, placement=(0, 1, 2), arrival_rate=-0.1)


class TestStorageSystemModel:
    def test_basic_accessors(self, small_model):
        assert small_model.num_nodes == 6
        assert small_model.num_files == 6
        assert small_model.cache_capacity == 5
        assert small_model.node_ids == [0, 1, 2, 3, 4, 5]
        assert small_model.total_arrival_rate == pytest.approx(0.28)
        assert small_model.file("file-2").arrival_rate == pytest.approx(0.05)
        assert small_model.file_index("file-3") == 3
        assert small_model.max_cache_demand() == 18

    def test_unknown_file_and_node(self, small_model):
        with pytest.raises(ModelError):
            small_model.file("nope")
        with pytest.raises(ModelError):
            small_model.file_index("nope")
        with pytest.raises(ModelError):
            small_model.service(42)

    def test_placement_on_unknown_node_rejected(self):
        services = [ExponentialService(1.0)]
        files = [FileSpec("f", n=2, k=1, placement=(0, 7), arrival_rate=0.1)]
        with pytest.raises(ModelError):
            StorageSystemModel(services, files, cache_capacity=1)

    def test_duplicate_file_ids_rejected(self):
        services = [ExponentialService(1.0), ExponentialService(1.0)]
        files = [
            FileSpec("f", n=2, k=1, placement=(0, 1), arrival_rate=0.1),
            FileSpec("f", n=2, k=1, placement=(0, 1), arrival_rate=0.1),
        ]
        with pytest.raises(ModelError):
            StorageSystemModel(services, files, cache_capacity=1)

    def test_requires_at_least_one_file_and_node(self):
        with pytest.raises(ModelError):
            StorageSystemModel([], [], cache_capacity=0)
        with pytest.raises(ModelError):
            StorageSystemModel([ExponentialService(1.0)], [], cache_capacity=0)

    def test_node_arrival_rates(self, small_model):
        probabilities = []
        for spec in small_model.files:
            probabilities.append({node: spec.k / spec.n for node in spec.placement})
        rates = small_model.node_arrival_rates(probabilities)
        assert sum(rates.values()) == pytest.approx(
            sum(spec.arrival_rate * spec.k for spec in small_model.files)
        )

    def test_node_arrival_rates_rejects_foreign_nodes(self, small_model):
        probabilities = [{} for _ in range(small_model.num_files)]
        probabilities[0] = {5: 0.5}  # node 5 does not hold file-0's chunks
        with pytest.raises(ModelError):
            small_model.node_arrival_rates(probabilities)

    def test_copy_with_arrival_rates_mapping(self, small_model):
        updated = small_model.copy_with_arrival_rates({"file-0": 0.2})
        assert updated.file("file-0").arrival_rate == pytest.approx(0.2)
        assert updated.file("file-1").arrival_rate == pytest.approx(0.06)
        # The original is unchanged.
        assert small_model.file("file-0").arrival_rate == pytest.approx(0.08)

    def test_copy_with_arrival_rates_sequence(self, small_model):
        updated = small_model.copy_with_arrival_rates([0.01] * 6)
        assert updated.total_arrival_rate == pytest.approx(0.06)
        with pytest.raises(ModelError):
            small_model.copy_with_arrival_rates([0.01])

    def test_copy_with_cache_capacity(self, small_model):
        assert small_model.copy_with_cache_capacity(9).cache_capacity == 9


class TestRandomModelBuilder:
    def test_build_random_placement_model(self):
        model = build_random_placement_model(
            num_nodes=6,
            num_files=10,
            n=4,
            k=2,
            arrival_rates=[0.1, 0.2],
            service_rates=[1.0] * 6,
            cache_capacity=5,
            seed=3,
        )
        assert model.num_files == 10
        assert all(len(spec.placement) == 4 for spec in model.files)
        # Arrival rates cycle through the pattern.
        assert model.files[0].arrival_rate == pytest.approx(0.1)
        assert model.files[1].arrival_rate == pytest.approx(0.2)
        assert model.files[2].arrival_rate == pytest.approx(0.1)

    def test_build_random_placement_model_validation(self):
        with pytest.raises(ModelError):
            build_random_placement_model(
                num_nodes=3, num_files=2, n=4, k=2,
                arrival_rates=[0.1], service_rates=[1.0] * 3, cache_capacity=1,
            )
        with pytest.raises(ModelError):
            build_random_placement_model(
                num_nodes=3, num_files=2, n=2, k=2,
                arrival_rates=[], service_rates=[1.0] * 3, cache_capacity=1,
            )

    def test_reproducible_with_seed(self):
        kwargs = dict(
            num_nodes=8, num_files=5, n=4, k=2,
            arrival_rates=[0.1], service_rates=[1.0] * 8, cache_capacity=2,
        )
        a = build_random_placement_model(seed=11, **kwargs)
        b = build_random_placement_model(seed=11, **kwargs)
        assert [s.placement for s in a.files] == [s.placement for s in b.files]
