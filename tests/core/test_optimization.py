"""Tests for the Prob Z / Prob Pi solvers and Algorithm 1."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.static import no_cache_placement
from repro.core.algorithm import CacheOptimizer, optimize_cache_placement
from repro.core.bound import SolutionState, initial_solution, node_moments
from repro.core.placement import compare_placements, placement_histogram
from repro.core.prob_pi import solve_frank_wolfe, solve_projected_gradient, solve_slsqp
from repro.core.prob_z import solve_prob_z
from repro.core.vectorized import VectorizedSystem
from repro.exceptions import OptimizationError


class TestProbZ:
    def test_bisection_and_gradient_agree(self, small_model):
        state = initial_solution(small_model)
        moments = node_moments(small_model, state)
        bisection = solve_prob_z(small_model, state, moments, method="bisection")
        gradient = solve_prob_z(small_model, state, moments, method="gradient")
        assert np.allclose(bisection, gradient, atol=1e-2)

    def test_unknown_method(self, small_model):
        state = initial_solution(small_model)
        with pytest.raises(ValueError):
            solve_prob_z(small_model, state, method="nope")

    def test_z_values_nonnegative(self, small_model):
        state = initial_solution(small_model)
        for z in solve_prob_z(small_model, state):
            assert z >= 0.0


class TestProbPiSolvers:
    def _setup(self, model):
        system = VectorizedSystem(model)
        pi = system.initial_pi()
        z = system.optimal_z(pi)
        lower = np.zeros(system.num_files)
        upper = system.k_values.copy()
        return system, pi, z, lower, upper

    def test_projected_gradient_decreases_objective(self, small_model):
        system, pi, z, lower, upper = self._setup(small_model)
        start = system.objective(pi, z)
        result = solve_projected_gradient(system, z, lower, upper, initial_pi=pi)
        assert result.objective <= start + 1e-9
        # Feasibility of the result.
        sums = system.file_sums(result.pi)
        assert np.all(result.pi >= -1e-9) and np.all(result.pi <= 1 + 1e-9)
        assert np.all(sums <= upper + 1e-5)
        assert result.pi.sum() >= system.required_total() - 1e-5

    def test_frank_wolfe_decreases_objective(self, small_model):
        system, pi, z, lower, upper = self._setup(small_model)
        start = system.objective(pi, z)
        result = solve_frank_wolfe(system, z, lower, upper, initial_pi=pi, max_iterations=80)
        assert result.objective <= start + 1e-9

    def test_solvers_agree_on_small_instance(self, small_model):
        system, pi, z, lower, upper = self._setup(small_model)
        pgd = solve_projected_gradient(system, z, lower, upper, initial_pi=pi, max_iterations=300)
        fw = solve_frank_wolfe(system, z, lower, upper, initial_pi=pi, max_iterations=300)
        slsqp = solve_slsqp(system, z, lower, upper, initial_pi=pi)
        values = [pgd.objective, fw.objective, slsqp.objective]
        assert max(values) - min(values) <= 0.05 * max(abs(min(values)), 1.0)

    def test_respects_fixed_per_file_totals(self, small_model):
        system, pi, z, lower, upper = self._setup(small_model)
        lower = lower.copy()
        upper = upper.copy()
        lower[0] = upper[0] = 2.0  # pin file-0 to exactly one cached chunk
        result = solve_projected_gradient(system, z, lower, upper, initial_pi=pi)
        sums = system.file_sums(result.pi)
        assert sums[0] == pytest.approx(2.0, abs=1e-4)


class TestAlgorithm1:
    def test_optimizer_produces_valid_placement(self, small_model):
        outcome = CacheOptimizer(small_model, tolerance=0.001).optimize()
        placement = outcome.placement
        placement.validate_against(small_model)
        assert placement.total_cached_chunks <= small_model.cache_capacity
        # Integer allocations and integral storage fetches per file.
        for entry in placement.files:
            total_pi = sum(entry.scheduling_probabilities.values())
            assert total_pi == pytest.approx(entry.k - entry.cached_chunks, abs=1e-3)

    def test_objective_trace_is_monotone(self, small_model):
        trace = CacheOptimizer(small_model, tolerance=0.001).optimize().objective_trace
        assert all(b <= a + 1e-6 for a, b in zip(trace, trace[1:]))

    def test_caching_never_hurts(self, small_model):
        optimized = CacheOptimizer(small_model, tolerance=0.001).optimize().placement
        baseline = no_cache_placement(small_model)
        assert optimized.objective <= baseline.objective + 1e-6

    def test_more_cache_never_hurts(self, paper_like_model):
        small_cache = CacheOptimizer(paper_like_model, tolerance=0.01).optimize().placement
        bigger_model = paper_like_model.copy_with_cache_capacity(
            paper_like_model.cache_capacity * 2
        )
        big_cache = CacheOptimizer(bigger_model, tolerance=0.01).optimize().placement
        assert big_cache.objective <= small_cache.objective + 1e-3

    def test_full_cache_gives_near_zero_latency(self, small_model):
        full = small_model.copy_with_cache_capacity(small_model.max_cache_demand())
        placement = CacheOptimizer(full, tolerance=0.001).optimize().placement
        assert placement.total_cached_chunks == small_model.max_cache_demand()
        assert placement.objective == pytest.approx(0.0, abs=1e-6)

    def test_zero_cache_capacity(self, small_model):
        zero = small_model.copy_with_cache_capacity(0)
        placement = CacheOptimizer(zero, tolerance=0.001).optimize().placement
        assert placement.total_cached_chunks == 0

    def test_warm_start_accepted(self, small_model):
        first = CacheOptimizer(small_model, tolerance=0.001).optimize()
        warm = SolutionState(
            probabilities=[
                dict(entry.scheduling_probabilities) for entry in first.placement.files
            ],
            z_values=[0.0] * small_model.num_files,
        )
        second = CacheOptimizer(small_model, tolerance=0.001).optimize(initial_state=warm)
        assert second.placement.objective <= first.placement.objective * 1.05

    def test_hot_files_get_cache_priority(self, paper_like_model):
        placement = CacheOptimizer(paper_like_model, tolerance=0.01).optimize().placement
        cached = placement.cached_chunks()
        rates = {spec.file_id: spec.arrival_rate for spec in paper_like_model.files}
        mean_rate_cached = np.mean(
            [rates[f] for f, d in cached.items() if d > 0] or [0.0]
        )
        mean_rate_uncached = np.mean(
            [rates[f] for f, d in cached.items() if d == 0] or [0.0]
        )
        # Cached files should not be systematically colder than uncached ones.
        assert mean_rate_cached >= mean_rate_uncached * 0.8

    def test_frank_wolfe_variant_runs(self, small_model):
        outcome = CacheOptimizer(
            small_model, tolerance=0.01, pi_solver="frank_wolfe", pi_max_iterations=60
        ).optimize()
        outcome.placement.validate_against(small_model)

    def test_single_file_rounding_variant(self, small_model):
        outcome = CacheOptimizer(
            small_model, tolerance=0.01, rounding_fraction=0.0
        ).optimize()
        outcome.placement.validate_against(small_model)

    def test_invalid_parameters(self, small_model):
        with pytest.raises(OptimizationError):
            CacheOptimizer(small_model, tolerance=0.0)
        with pytest.raises(OptimizationError):
            CacheOptimizer(small_model, rounding_fraction=1.5)
        with pytest.raises(OptimizationError):
            CacheOptimizer(small_model, pi_solver="bogus")

    def test_convenience_wrapper_deprecated(self, small_model):
        with pytest.warns(DeprecationWarning, match="optimize_cache_placement"):
            outcome = optimize_cache_placement(small_model, tolerance=0.01, time_bin=7)
        assert outcome.placement.time_bin == 7

    def test_overloaded_system_still_uses_cache(self, small_model):
        # Scale the arrival rates so the uncached system would be unstable;
        # the optimizer must still fill the cache (which restores stability
        # or at least strictly reduces load).
        hot = small_model.copy_with_arrival_rates(
            [spec.arrival_rate * 20 for spec in small_model.files]
        )
        placement = CacheOptimizer(hot, tolerance=0.01).optimize().placement
        assert placement.total_cached_chunks == hot.cache_capacity


class TestPlacementHelpers:
    def test_histogram_and_compare(self, small_model):
        placement = CacheOptimizer(small_model, tolerance=0.001).optimize().placement
        histogram = placement_histogram(placement)
        assert sum(count for count in histogram.values()) == small_model.num_files
        baseline = no_cache_placement(small_model)
        delta = compare_placements(baseline, placement)
        assert sum(delta.values()) == placement.total_cached_chunks

    def test_pool_assignment_partition(self, small_model):
        placement = CacheOptimizer(small_model, tolerance=0.001).optimize().placement
        pools = placement.pool_assignment()
        assigned = [f for files in pools.values() for f in files]
        assert sorted(assigned) == sorted(spec.file_id for spec in small_model.files)

    def test_summary_and_lookup(self, small_model):
        placement = CacheOptimizer(small_model, tolerance=0.001).optimize().placement
        text = placement.summary()
        assert "CachePlacement" in text and "file-0" in text
        entry = placement.placement_for("file-0")
        assert entry.equivalent_code == (entry.n, entry.k - entry.cached_chunks)
        assert placement.mean_latency_bound() > 0
