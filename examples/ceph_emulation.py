#!/usr/bin/env python
"""Ceph-style prototype emulation: equivalent-code pools vs an LRU cache tier.

This example mirrors the paper's testbed evaluation (Section V) on the
emulated cluster:

1. 12 HDD-backed OSDs, (7,4) erasure coding, 10 GB cache, 64 MB objects,
2. the optimization assigns each object to an equivalent-code pool
   (7, 4-d) according to its cache allocation,
3. the same workload runs against Ceph's baseline configuration -- a single
   (7,4) pool behind a replicated LRU cache tier,
4. the COSBench-style report compares the two configurations.

Run with::

    python examples/ceph_emulation.py
"""

from __future__ import annotations

from repro.api import Scenario, get_solver
from repro.cluster.cluster import CephLikeCluster, ClusterConfig
from repro.kernels import active_kernel_backend_name
from repro.experiments.fig10_object_sizes import _analytical_model
from repro.workloads.generator import standard_read_workload
from repro.workloads.traces import aggregate_rate_to_per_object


def main() -> None:
    num_objects = 400
    aggregate_rate = 2.0  # requests per second across all objects
    duration_s = 600.0
    config = ClusterConfig(object_size_mb=64, cache_capacity_mb=10 * 1024, seed=1)
    arrival_rates = aggregate_rate_to_per_object(aggregate_rate, num_objects)

    print(
        f"cluster: {config.num_osds} OSDs, ({config.n},{config.k}) code, "
        f"{config.object_size_mb} MB objects ({config.chunk_size_mb} MB chunks), "
        f"{config.cache_capacity_mb} MB cache"
    )
    print(f"workload: {num_objects} objects, {aggregate_rate} reads/s aggregate, "
          f"{duration_s:.0f}s run")
    # The emulation's queueing (per-OSD Lindley scans, fork-join maxima,
    # the SSD cache bank) runs on the active repro.kernels backend; the
    # selection is declarative Scenario state and survives serialization.
    assert Scenario.from_dict(Scenario(backend="numpy").to_dict()).backend == "numpy"
    print(f"kernel backend: {active_kernel_backend_name()}\n")

    # --- Optimal (functional) caching: optimize, then create equivalent pools.
    cluster_optimal = CephLikeCluster(config)
    model = _analytical_model(cluster_optimal, arrival_rates, config)
    # Solvers are resolved through the repro.api registry (any registered
    # backend -- projected_gradient, frank_wolfe, slsqp -- works here).
    solver = get_solver("projected_gradient")
    placement = solver.optimize(model, tolerance=0.5).placement
    object_pool_map = placement.cached_chunks()
    pools = {}
    for allocation in object_pool_map.values():
        pools[allocation] = pools.get(allocation, 0) + 1
    print("object-to-pool map (equivalent code -> objects):")
    for allocation in sorted(pools, reverse=True):
        print(f"  (7,{config.k - allocation}) pool: {pools[allocation]} objects "
              f"({allocation} chunks cached each)")

    workload_optimal = standard_read_workload(arrival_rates, duration_s, mode="optimal")
    stages_optimal = workload_optimal.run(
        cluster_optimal, object_pool_map=object_pool_map, seed=99
    )
    optimal_read = stages_optimal[-1].read_result

    # --- Baseline: (7,4) pool behind a replicated LRU cache tier.
    cluster_baseline = CephLikeCluster(config)
    workload_baseline = standard_read_workload(arrival_rates, duration_s, mode="baseline")
    stages_baseline = workload_baseline.run(cluster_baseline, seed=99)
    baseline_read = stages_baseline[-1].read_result

    print("\nCOSBench-style report (read stage):")
    print(f"{'configuration':>28} {'mean (ms)':>10} {'p95 (ms)':>10} {'p99 (ms)':>10}")
    print(
        f"{'optimal functional caching':>28} {optimal_read.mean_latency_ms():>10.1f} "
        f"{optimal_read.percentile_ms(95):>10.1f} {optimal_read.percentile_ms(99):>10.1f}"
    )
    print(
        f"{'Ceph LRU cache tier':>28} {baseline_read.mean_latency_ms():>10.1f} "
        f"{baseline_read.percentile_ms(95):>10.1f} {baseline_read.percentile_ms(99):>10.1f}"
    )
    improvement = 1.0 - optimal_read.mean_latency_ms() / baseline_read.mean_latency_ms()
    hit_ratio = baseline_read.cache_hits / max(
        baseline_read.cache_hits + baseline_read.cache_misses, 1
    )
    print(f"\nLRU cache-tier hit ratio: {hit_ratio:.1%}")
    print(f"latency reduction of optimal caching vs LRU tier: {improvement:.1%} "
          "(paper reports ~24-26% on its testbed)")


if __name__ == "__main__":
    main()
