#!/usr/bin/env python
"""Time-varying workloads: re-optimizing the cache across time bins.

This example replays the Table-I scenario of the paper (ten files whose
arrival rates change across three time bins), plus a diurnal busy/off-peak
pattern, and shows:

* how the sliding-window rate estimator detects the rate changes and opens
  new time bins,
* how the cache content follows the hot files of each bin,
* how the lazy update rule (drop shrunk allocations immediately, add grown
  allocations on the next access) keeps the network overhead at zero,
* how the registered ``fig5`` experiment replays each bin's placement
  through the batch simulation engine as a cross-check of the bound.

Run with::

    python examples/dynamic_timebins.py
"""

from __future__ import annotations

import numpy as np

from repro.api import run_experiment
from repro.core.timebins import TimeBin, TimeBinScheduler
from repro.simulation.arrivals import generate_request_stream
from repro.workloads.defaults import ten_file_model
from repro.workloads.rates import SlidingWindowRateEstimator
from repro.workloads.traces import table_i_time_bins

RATE_SCALE = 65.0  # keeps the 10-file system busy enough for caching to matter


def replay_table_i() -> None:
    """Re-optimize the cache at each Table-I time bin and print the deltas."""
    model = ten_file_model(cache_capacity=10, seed=2016, rate_scale=RATE_SCALE)
    scheduler = TimeBinScheduler(model, tolerance=0.001)
    bins = table_i_time_bins()
    for time_bin in bins:
        time_bin.arrival_rates = {
            file_id: rate * RATE_SCALE
            for file_id, rate in time_bin.arrival_rates.items()
        }

    print("Table-I replay: cache content per time bin")
    for time_bin in bins:
        outcome = scheduler.process_bin(time_bin)
        cached = {
            file_id: chunks
            for file_id, chunks in outcome.placement.cached_chunks().items()
            if chunks > 0
        }
        print(
            f"  bin {time_bin.index}: latency bound {outcome.placement.objective:6.2f}s, "
            f"cached {cached}"
        )
        if outcome.delta.removed or outcome.delta.added_on_access:
            print(
                f"    delta: drop {outcome.delta.removed or '{}'} immediately, "
                f"add {outcome.delta.added_on_access or '{}'} on next access"
            )


def detect_rate_changes() -> None:
    """Drive the sliding-window estimator with a busy/off-peak pattern."""
    print("\nSliding-window rate detection (busy hour -> off-peak):")
    estimator = SlidingWindowRateEstimator(window=600.0, change_threshold=0.6)
    busy_rates = {f"file-{i}": 0.02 for i in range(10)}
    offpeak_rates = {f"file-{i}": 0.004 for i in range(10)}
    estimator.freeze_bin_rates(busy_rates)

    rng = np.random.default_rng(5)
    busy_stream = generate_request_stream(busy_rates, 1800.0, rng)
    offpeak_stream = [
        (time + 1800.0, file_id)
        for time, file_id in generate_request_stream(offpeak_rates, 1800.0, rng)
    ]
    events = estimator.replay(busy_stream + offpeak_stream)
    if events:
        first = events[0]
        print(
            f"  first change detected at t={first.time:.0f}s: {first.file_id} "
            f"{first.previous_rate:.4f}/s -> {first.new_rate:.4f}/s "
            f"(time bin {estimator.current_bin} opened)"
        )
        print(f"  total rate-change events: {len(events)}")
    else:
        print("  no change detected (threshold too high for this trace)")


def simulate_bins_via_registry() -> None:
    """Cross-check each bin's latency bound against the batch engine."""
    print("\nPer-bin simulation cross-check (registered fig5 experiment):")
    result = run_experiment("fig5", scale="fast", simulate_bins=True, horizon=2000.0)
    for index, (bound, simulated) in enumerate(
        zip(result.latency_per_bin, result.simulated_latency_per_bin), start=1
    ):
        print(
            f"  bin {index}: analytical bound {bound:6.2f}s, "
            f"simulated mean {simulated:6.2f}s"
        )


def main() -> None:
    replay_table_i()
    detect_rate_changes()
    simulate_bins_via_registry()


if __name__ == "__main__":
    main()
