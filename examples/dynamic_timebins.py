#!/usr/bin/env python
"""Time-varying workloads: the online re-optimization controller.

This example replays the Table-I scenario of the paper (ten files whose
arrival rates change across three time bins) and then runs the full online
control loop on a drifting workload, showing:

* how :class:`repro.control.OnlineController` re-optimizes the placement
  at explicit bin boundaries and applies lazy drop-now/add-on-access swaps,
* how the streaming rate estimator detects rate drift and opens new time
  bins on its own,
* how a declarative :class:`repro.api.Scenario` attaches a registered
  controller to any workload (``controller="online"``), end to end,
* how the registered ``fig5`` experiment replays each bin's placement
  through the batch simulation engine as a cross-check of the bound.

Run with::

    python examples/dynamic_timebins.py
"""

from __future__ import annotations

import numpy as np

from repro.api import Scenario, run_experiment, run_scenario
from repro.control import OnlineController, StreamingRateEstimator
from repro.simulation.arrivals import generate_request_stream
from repro.workloads.catalog import table_i_time_bins, ten_file_model

RATE_SCALE = 65.0  # keeps the 10-file system busy enough for caching to matter


def replay_table_i() -> None:
    """Re-optimize the cache at each Table-I time bin and print the swaps."""
    model = ten_file_model(cache_capacity=10, seed=2016, rate_scale=RATE_SCALE)
    controller = OnlineController(model, alternation_tolerance=0.001)

    print("Table-I replay: cache content per time bin")
    for time_bin in table_i_time_bins():
        scaled = {
            file_id: rate * RATE_SCALE
            for file_id, rate in time_bin.arrival_rates.items()
        }
        record = controller.process_bin(scaled, index=time_bin.index)
        cached = {
            file_id: chunks
            for file_id, chunks in record.placement.cached_chunks().items()
            if chunks > 0
        }
        print(
            f"  bin {time_bin.index}: latency bound "
            f"{record.placement.objective:6.2f}s, cached {cached}"
        )
        churn = record.churn
        if churn.dropped_chunks or churn.added_chunks:
            print(
                f"    swaps: drop {churn.dropped_chunks} chunks immediately, "
                f"add {churn.added_chunks} on next access "
                f"({churn.deferred_chunks} deferred by the budget)"
            )


def detect_rate_changes() -> None:
    """Drive the streaming estimator with a busy/off-peak pattern."""
    print("\nStreaming drift detection (busy hour -> off-peak):")
    file_ids = [f"file-{i}" for i in range(10)]
    estimator = StreamingRateEstimator(
        num_files=10, window=600.0, change_threshold=0.6, file_ids=file_ids
    )
    busy_rates = {file_id: 0.1 for file_id in file_ids}
    offpeak_rates = {file_id: 0.02 for file_id in file_ids}

    rng = np.random.default_rng(5)
    busy = generate_request_stream(busy_rates, 1800.0, rng)
    offpeak = [
        (time + 1800.0, file_id)
        for time, file_id in generate_request_stream(offpeak_rates, 1800.0, rng)
    ]
    position_of = {file_id: index for index, file_id in enumerate(file_ids)}
    requests = busy + offpeak
    times = np.array([time for time, _ in requests])
    positions = np.array([position_of[file_id] for _, file_id in requests])

    # Fold the stream through the window in 100-second chunks (short
    # relative to the 600-second window, so chunk-granularity expiry stays
    # accurate), as the controller would; the bin reference is frozen once
    # a full window of busy-hour data has been seen, so startup noise does
    # not fire.
    events = []
    for start in np.arange(0.0, 3600.0, 100.0):
        mask = (times >= start) & (times < start + 100.0)
        if start < estimator.window:
            estimator.observe(times[mask], positions[mask])
            estimator.freeze_bin_rates()
            continue
        event = estimator.observe(times[mask], positions[mask])
        if event is not None:
            events.append(event)
            estimator.freeze_bin_rates()
    if events:
        first = events[0]
        print(
            f"  first drift detected at t={first.time:.0f}s: {first.file_id} "
            f"{first.previous_rate:.4f}/s -> {first.new_rate:.4f}/s "
            f"(bin {first.bin_index} opened, {first.num_changed} files moved)"
        )
        print(f"  total drift events: {len(events)}")
    else:
        print("  no drift detected (threshold too high for this trace)")


def run_controller_scenario() -> None:
    """Attach the online controller to a drifting workload, declaratively."""
    print("\nDeclarative control loop (Scenario + controller='online'):")
    scenario = Scenario(
        workload="drift",
        num_files=40,
        cache_capacity=40,
        simulate=False,
        seed=7,
        horizon=7200.0,
        workload_params={"shift_every": 900.0},
        controller="online",
        controller_params={"window": 600.0, "churn_budget": 8},
    )
    result = run_scenario(scenario)
    control = result.control
    print(
        f"  {control.num_bins} bins over {control.duration:.0f}s "
        f"({control.num_drift_events} drift re-solves, "
        f"churn budget {control.churn_budget})"
    )
    print(
        f"  swaps: -{control.total_dropped_chunks}"
        f"/+{control.total_added_chunks} chunks "
        f"({control.total_deferred_chunks} deferred)"
    )


def simulate_bins_via_registry() -> None:
    """Cross-check each bin's latency bound against the batch engine."""
    print("\nPer-bin simulation cross-check (registered fig5 experiment):")
    result = run_experiment("fig5", scale="fast", simulate_bins=True, horizon=2000.0)
    for index, (bound, simulated) in enumerate(
        zip(result.latency_per_bin, result.simulated_latency_per_bin), start=1
    ):
        print(
            f"  bin {index}: analytical bound {bound:6.2f}s, "
            f"simulated mean {simulated:6.2f}s"
        )


def main() -> None:
    replay_table_i()
    detect_rate_changes()
    run_controller_scenario()
    simulate_bins_via_registry()


if __name__ == "__main__":
    main()
