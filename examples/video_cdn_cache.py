#!/usr/bin/env python
"""Video-on-demand proxy caching (the motivating scenario of the paper's intro).

A video library follows the classic 80/20 popularity rule: roughly 20% of the
titles receive about 80% of the requests.  The library is stored with a (7,4)
erasure code across 12 storage servers; a proxy close to the video clients
holds a small functional cache.  The example:

1. builds a Zipf-popularity workload over 80 titles,
2. optimizes the functional cache with Algorithm 1,
3. compares it (analytically and by simulation) against three baselines --
   no cache, whole-file caching of the most popular titles, and exact
   caching of verbatim chunks,
4. verifies end-to-end, with the real Reed-Solomon codec, that a cached
   title can be reconstructed from its functional chunks plus any k-d
   storage chunks.

Run with::

    python examples/video_cdn_cache.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines.exact import exact_caching_placement
from repro.baselines.static import no_cache_placement, popularity_whole_file_placement
from repro.core.algorithm import CacheOptimizer
from repro.core.model import FileSpec, StorageSystemModel
from repro.erasure.functional import FunctionalCacheCoder
from repro.erasure.reed_solomon import ReedSolomonCode
from repro.queueing.distributions import ExponentialService
from repro.simulation.simulator import SimulationConfig, StorageSimulator
from repro.workloads.defaults import DEFAULT_SERVICE_RATES


def build_video_library(
    num_titles: int = 80,
    zipf_exponent: float = 1.1,
    total_request_rate: float = 0.09,
    cache_chunks: int = 60,
    seed: int = 42,
) -> StorageSystemModel:
    """Build a Zipf-popular video library stored with a (7,4) code."""
    n, k = 7, 4
    num_servers = 12
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, num_titles + 1) ** zipf_exponent
    weights /= weights.sum()
    services = [ExponentialService(rate) for rate in DEFAULT_SERVICE_RATES]
    files = []
    for index in range(num_titles):
        placement = [int(x) for x in rng.choice(num_servers, size=n, replace=False)]
        files.append(
            FileSpec(
                file_id=f"title-{index:03d}",
                n=n,
                k=k,
                placement=placement,
                arrival_rate=float(total_request_rate * weights[index]),
                chunk_size=25,
            )
        )
    return StorageSystemModel(services=services, files=files, cache_capacity=cache_chunks)


def verify_functional_reconstruction() -> None:
    """Decode a title from cached functional chunks plus storage chunks."""
    code = ReedSolomonCode(n=7, k=4)
    coder = FunctionalCacheCoder(code, file_id="title-000")
    payload = bytes(np.random.default_rng(0).integers(0, 256, size=4 * 1024, dtype=np.uint8))
    storage_chunks = coder.storage_chunks(payload)
    cached = coder.build_cache_chunks(payload, d=2)
    # Any 2 of the 7 storage chunks complete the read (k - d = 2).
    recovered = coder.reconstruct(cached, storage_chunks[5:7])
    assert recovered == payload, "functional reconstruction failed"
    print(
        "codec check: title reconstructed from 2 cached functional chunks "
        "+ 2 arbitrary storage chunks (out of 7)"
    )


def main() -> None:
    verify_functional_reconstruction()

    model = build_video_library()
    top_20pct = int(0.2 * model.num_files)
    top_rate = sum(spec.arrival_rate for spec in model.files[:top_20pct])
    print(
        f"\nvideo library: {model.num_files} titles, "
        f"top 20% of titles carry {top_rate / model.total_arrival_rate:.0%} of requests"
    )
    print(f"proxy cache: {model.cache_capacity} chunks "
          f"({model.cache_capacity / (4 * model.num_files):.0%} of all data chunks)")

    policies = {
        "no cache": no_cache_placement(model),
        "whole-file (most popular)": popularity_whole_file_placement(model),
        "exact chunks (most popular)": exact_caching_placement(model),
        "Sprout functional caching": CacheOptimizer(model, tolerance=0.01)
        .optimize()
        .placement,
    }

    print(f"\n{'policy':>28} {'analytical bound':>17} {'simulated mean':>15}")
    config = SimulationConfig(horizon=300_000.0, seed=3, warmup=15_000.0)
    for name, placement in policies.items():
        simulated = StorageSimulator(model, placement).run(config).mean_latency()
        print(f"{name:>28} {placement.objective:>16.2f}s {simulated:>14.2f}s")

    sprout = policies["Sprout functional caching"]
    hot_titles = sorted(
        sprout.files, key=lambda entry: entry.arrival_rate, reverse=True
    )[:5]
    print("\ncache allocation of the five hottest titles (Sprout):")
    for entry in hot_titles:
        print(
            f"  {entry.file_id}: {entry.cached_chunks} of {entry.k} chunks cached, "
            f"equivalent code {entry.equivalent_code}"
        )


if __name__ == "__main__":
    main()
