#!/usr/bin/env python
"""Video-on-demand proxy caching (the motivating scenario of the paper's intro).

A video library follows the classic 80/20 popularity rule: roughly 20% of the
titles receive about 80% of the requests.  The library is stored with a (7,4)
erasure code across 12 storage servers; a proxy close to the video clients
holds a small functional cache.  The example:

1. registers a custom Zipf-popularity workload with the ``repro.api``
   workload registry (the same extension point any new workload uses),
2. runs one :class:`~repro.api.Scenario` per caching policy -- no cache,
   whole-file caching, exact chunk caching and Sprout's optimized
   functional caching -- through a shared :class:`~repro.api.Session`,
3. compares the policies analytically and by simulation,
4. verifies end-to-end, with the real Reed-Solomon codec, that a cached
   title can be reconstructed from its functional chunks plus any k-d
   storage chunks.

Run with::

    python examples/video_cdn_cache.py
"""

from __future__ import annotations

import numpy as np

from repro.api import Scenario, Session, register_workload
from repro.core.model import FileSpec, StorageSystemModel
from repro.erasure.functional import FunctionalCacheCoder
from repro.erasure.reed_solomon import ReedSolomonCode
from repro.queueing.distributions import ExponentialService
from repro.workloads.defaults import DEFAULT_SERVICE_RATES


@register_workload("zipf_video", description="Zipf-popular video library on 12 servers")
def build_video_library(scenario: Scenario) -> StorageSystemModel:
    """Build a Zipf-popular video library stored with the scenario's code."""
    params = dict(scenario.workload_params)
    zipf_exponent = params.get("zipf_exponent", 1.1)
    total_request_rate = params.get("total_request_rate", 0.09)
    n, k = scenario.code
    num_servers = 12
    rng = np.random.default_rng(scenario.seed)
    weights = 1.0 / np.arange(1, scenario.num_files + 1) ** zipf_exponent
    weights /= weights.sum()
    services = [ExponentialService(rate) for rate in DEFAULT_SERVICE_RATES]
    files = []
    for index in range(scenario.num_files):
        placement = [int(x) for x in rng.choice(num_servers, size=n, replace=False)]
        files.append(
            FileSpec(
                file_id=f"title-{index:03d}",
                n=n,
                k=k,
                placement=placement,
                arrival_rate=float(
                    total_request_rate * weights[index] * scenario.rate_scale
                ),
                chunk_size=25,
            )
        )
    return StorageSystemModel(
        services=services, files=files, cache_capacity=scenario.cache_capacity
    )


def verify_functional_reconstruction() -> None:
    """Decode a title from cached functional chunks plus storage chunks."""
    code = ReedSolomonCode(n=7, k=4)
    coder = FunctionalCacheCoder(code, file_id="title-000")
    payload = bytes(np.random.default_rng(0).integers(0, 256, size=4 * 1024, dtype=np.uint8))
    storage_chunks = coder.storage_chunks(payload)
    cached = coder.build_cache_chunks(payload, d=2)
    # Any 2 of the 7 storage chunks complete the read (k - d = 2).
    recovered = coder.reconstruct(cached, storage_chunks[5:7])
    assert recovered == payload, "functional reconstruction failed"
    print(
        "codec check: title reconstructed from 2 cached functional chunks "
        "+ 2 arbitrary storage chunks (out of 7)"
    )


def main() -> None:
    verify_functional_reconstruction()

    base = Scenario(
        workload="zipf_video",
        num_files=80,
        cache_capacity=60,
        seed=42,
        horizon=300_000.0,
    )
    session = Session()
    library = session.build_model(base)
    top_20pct = int(0.2 * library.num_files)
    top_rate = sum(spec.arrival_rate for spec in library.files[:top_20pct])
    print(
        f"\nvideo library: {library.num_files} titles, "
        f"top 20% of titles carry {top_rate / library.total_arrival_rate:.0%} of requests"
    )
    print(
        f"proxy cache: {library.cache_capacity} chunks "
        f"({library.cache_capacity / (4 * library.num_files):.0%} of all data chunks)"
    )

    policies = {
        "no cache": base.replace(policy="no_cache"),
        "whole-file (most popular)": base.replace(policy="whole_file"),
        "exact chunks (most popular)": base.replace(policy="exact"),
        "Sprout functional caching": base,  # policy="optimal"
    }

    print(f"\n{'policy':>28} {'analytical bound':>17} {'simulated mean':>15}")
    results = {}
    for name, scenario in policies.items():
        result = session.run(scenario)
        results[name] = result
        print(
            f"{name:>28} {result.objective:>16.2f}s "
            f"{result.simulated_mean_latency:>14.2f}s"
        )

    sprout = results["Sprout functional caching"].placement
    hot_titles = sorted(
        sprout.files, key=lambda entry: entry.arrival_rate, reverse=True
    )[:5]
    print("\ncache allocation of the five hottest titles (Sprout):")
    for entry in hot_titles:
        print(
            f"  {entry.file_id}: {entry.cached_chunks} of {entry.k} chunks cached, "
            f"equivalent code {entry.equivalent_code}"
        )


if __name__ == "__main__":
    main()
