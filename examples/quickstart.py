#!/usr/bin/env python
"""Quickstart: optimize a functional cache for a small erasure-coded store.

The script builds a 12-server, 60-file storage system in the paper's default
configuration, runs Algorithm 1 to decide how many functional chunks of each
file to cache and how to schedule the remaining chunk fetches, then validates
the analytical latency bound against a discrete-event simulation of the same
system with and without the optimized cache.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.baselines.static import no_cache_placement
from repro.core.algorithm import CacheOptimizer
from repro.core.placement import placement_histogram
from repro.simulation.simulator import SimulationConfig, StorageSimulator
from repro.workloads.defaults import paper_default_model


def main() -> None:
    # 60 files, (7,4) erasure code, 12 heterogeneous servers, cache of 30
    # chunks.  Arrival rates are scaled up so the system is busy enough for
    # caching to matter on this small instance.
    model = paper_default_model(
        num_files=60, cache_capacity=30, seed=7, rate_scale=12.0
    )
    print(f"model: {model}")
    print(f"aggregate arrival rate: {model.total_arrival_rate:.4f} requests/s")

    # --- Optimize the cache placement (Algorithm 1).
    optimizer = CacheOptimizer(model, tolerance=0.01)
    outcome = optimizer.optimize()
    placement = outcome.placement
    print(
        f"\nAlgorithm 1 converged in {outcome.outer_iterations} outer iterations "
        f"({outcome.inner_solves} convex solves)"
    )
    print(f"objective trace: {[round(v, 2) for v in outcome.objective_trace]}")
    print(
        f"cache usage: {placement.total_cached_chunks}/{model.cache_capacity} chunks, "
        f"allocation histogram (d -> files): {placement_histogram(placement)}"
    )
    print(f"analytical mean latency bound: {placement.objective:.2f} s")

    # --- Validate against the discrete-event simulator.
    config = SimulationConfig(horizon=200_000.0, seed=11, warmup=10_000.0)

    no_cache = no_cache_placement(model)
    sim_no_cache = StorageSimulator(model, no_cache).run(config)
    sim_optimized = StorageSimulator(model, placement).run(config)

    print("\nsimulated mean file latency:")
    print(f"  without cache   : {sim_no_cache.mean_latency():8.2f} s")
    print(f"  optimized cache : {sim_optimized.mean_latency():8.2f} s")
    print(f"  analytical bound: {placement.objective:8.2f} s (upper bound)")
    reduction = 1.0 - sim_optimized.mean_latency() / sim_no_cache.mean_latency()
    print(f"  latency reduction from functional caching: {reduction:.1%}")
    print(
        f"  chunks served from cache: {sim_optimized.cache_chunk_fraction():.1%} "
        "of all chunk requests"
    )


if __name__ == "__main__":
    main()
