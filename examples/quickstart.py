#!/usr/bin/env python
"""Quickstart: the declarative ``repro.api`` facade in one file.

A :class:`repro.api.Scenario` describes the whole run -- workload, erasure
code, cache policy, solver, simulation engine, seed -- and
:func:`repro.api.run_scenario` executes the paper's pipeline end to end
(model -> Algorithm-1 optimization -> probabilistic scheduling ->
simulation), returning a typed :class:`~repro.api.RunResult`.

The script optimizes a functional cache for a 12-server, 60-file
erasure-coded store, compares it against the no-cache baseline (same
scenario, different ``policy``), and dumps the machine-readable result.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from pathlib import Path

from repro.api import Scenario, Session


def main() -> None:
    # 60 files, (7,4) erasure code, 12 heterogeneous servers, cache of 30
    # chunks.  Arrival rates are scaled up so the system is busy enough for
    # caching to matter on this small instance.
    scenario = Scenario(
        num_files=60,
        cache_capacity=30,
        code=(7, 4),
        seed=7,
        rate_scale=12.0,
        engine="batch",
        backend="numpy",       # kernel backend (repro.api.list_kernel_backends())
        horizon=200_000.0,
    )
    print(scenario.describe())
    print(f"queueing kernels compute on the {scenario.backend!r} backend")

    # The backend is part of the scenario's declarative state, so it
    # round-trips through the dict serialization like every other field.
    assert Scenario.from_dict(scenario.to_dict()) == scenario

    # --- Optimize + simulate in one call.
    session = Session()
    optimized = session.run(scenario)
    print()
    print(optimized.summary())

    # --- Same scenario under the no-cache baseline policy.
    no_cache = session.run(scenario.replace(policy="no_cache"))

    print("\nsimulated mean file latency:")
    print(f"  without cache   : {no_cache.simulated_mean_latency:8.2f} s")
    print(f"  optimized cache : {optimized.simulated_mean_latency:8.2f} s")
    print(f"  analytical bound: {optimized.objective:8.2f} s (upper bound)")
    reduction = 1.0 - optimized.simulated_mean_latency / no_cache.simulated_mean_latency
    print(f"  latency reduction from functional caching: {reduction:.1%}")
    print(
        f"  chunks served from cache: {optimized.cache_chunk_fraction:.1%} "
        "of all chunk requests"
    )

    # --- Uniform machine-readable output (same serializer as the CLI's
    # --json mode and the BENCH_*.json writers).  Generated artifacts go
    # under out/, which is gitignored.
    out_dir = Path(__file__).resolve().parent.parent / "out"
    out_dir.mkdir(exist_ok=True)
    path = optimized.write_json(out_dir / "quickstart_run.json")
    print(f"\nfull result written to {path}")


if __name__ == "__main__":
    main()
