"""Benchmark: steady-state warm re-solve cost of the online controller.

The control-subsystem gate: after bootstrapping a drift-workload system,
the :class:`~repro.control.resolve.OnlineResolver` re-solves three +/-2%
rate perturbations warm and one cold.  The paper's per-bin discipline is
only viable online if the re-solve fits inside a time bin, so at paper
scale (10^5 files) the gate holds the median warm re-solve under the
fig14 bin width (:data:`~repro.experiments.fig14_drift_race.PAPER_BIN_WIDTH_S`)
and requires it to be >= 2x faster than the cold re-solve of the same bin
(>= 1.3x at the reduced fast scale, where fixed per-solve overheads eat a
larger share of the win).

The cold comparator runs with ``commit=False`` against the same carried
``z`` as the final warm solve, so the two minimize the same convex
problem; the run also asserts the warm-start parity guarantee there
(relaxed objectives agree to <= 1e-6 relative).  Results land in
``BENCH_online_resolve.json``.
"""

from __future__ import annotations

import gc
import time

import numpy as np
from conftest import print_report, write_bench_json

from repro.api.registry import WORKLOADS
from repro.api.scenario import Scenario
from repro.control import OnlineResolver
from repro.experiments.fig14_drift_race import PAPER_BIN_WIDTH_S

PARITY_RTOL = 1e-6

SCALES = {
    "fast": {"num_files": 4_000, "required_speedup": 1.3},
    "paper": {"num_files": 100_000, "required_speedup": 2.0},
}


def _build_model(num_files: int):
    # The fig14 workload at a load that keeps the no-cache starting point
    # queueing-stable independent of the file count (the parity envelope;
    # see repro/control/resolve.py).
    scenario = Scenario(
        workload="drift",
        num_files=num_files,
        cache_capacity=num_files,
        simulate=False,
        seed=7,
        rate_scale=1000.0 / num_files,
    )
    return WORKLOADS.get("drift").create(scenario).model()


def test_online_resolve_steady_state(benchmark, scale):
    params = SCALES["paper" if scale == "paper" else "fast"]
    model = _build_model(params["num_files"])
    resolver = OnlineResolver(model, build_placements=False)
    base = np.asarray([spec.arrival_rate for spec in model.files])
    rng = np.random.default_rng(13)

    start = time.perf_counter()
    bootstrap = benchmark.pedantic(
        resolver.bootstrap, iterations=1, rounds=1
    )
    bootstrap_seconds = time.perf_counter() - start

    def perturb():
        return np.clip(
            base * (1.0 + 0.02 * rng.standard_normal(base.size)), 1e-12, None
        )

    # Reach steady state first: the first bins after bootstrap still move
    # the carried (z, pi) a long way, so both warm and cold re-solves are
    # several times more expensive there than in the regime the per-bin
    # deadline is about.  Two committed warm-up bins settle the state.
    for _ in range(2):
        resolver.resolve(perturb(), warm=True, commit=True)

    # Steady state: three +/-2% perturbations resolved warm, each timed
    # individually; the gate uses the median so one GC or scheduler
    # hiccup cannot sink it.
    warm_seconds, warm_reports = [], []
    perturbations = [perturb() for _ in range(3)]
    cold_seconds = cold = None
    for index, rates in enumerate(perturbations):
        if index == len(perturbations) - 1:
            # Cold comparator of the final bin, against the same carried
            # z as the warm solve that follows (commit=False leaves the
            # carried state untouched).
            gc.collect()
            start = time.perf_counter()
            cold = resolver.resolve(rates, warm=False, commit=False)
            cold_seconds = time.perf_counter() - start
        gc.collect()
        start = time.perf_counter()
        warm_reports.append(resolver.resolve(rates, warm=True, commit=True))
        warm_seconds.append(time.perf_counter() - start)

    warm = warm_reports[-1]
    median_warm = float(np.median(warm_seconds))
    speedup = cold_seconds / median_warm
    parity_gap = abs(warm.relaxed_objective - cold.relaxed_objective) / max(
        abs(cold.relaxed_objective), 1.0
    )

    write_bench_json(
        "online_resolve",
        {
            "name": "online_resolve",
            "scale": scale,
            "num_files": params["num_files"],
            "num_pairs": resolver.system.num_pairs,
            "bin_width_s": PAPER_BIN_WIDTH_S,
            "bootstrap_seconds": bootstrap_seconds,
            "warm_seconds": warm_seconds,
            "median_warm_seconds": median_warm,
            "cold_seconds": cold_seconds,
            "warm_speedup": speedup,
            "parity_gap": parity_gap,
            "fraction_frozen": warm.fraction_frozen,
            "fallbacks": sum(report.fallback for report in warm_reports),
            "warm_iterations": warm.iterations,
            "cold_iterations": cold.iterations,
            "relaxed_objective": warm.relaxed_objective,
            "objective": bootstrap.relaxed_objective,
            "required_speedup": params["required_speedup"],
            "parity_rtol": PARITY_RTOL,
        },
    )
    print_report(
        "Online re-solve -- steady-state warm vs cold under +/-2% drift",
        f"{params['num_files']} files ({resolver.system.num_pairs} pairs), "
        f"bootstrap {bootstrap_seconds:.2f} s:\n"
        f"  warm re-solve  median {median_warm:8.3f} s "
        f"(runs: {', '.join(f'{s:.3f}' for s in warm_seconds)}; "
        f"gate < {PAPER_BIN_WIDTH_S:.0f} s bin width)\n"
        f"  cold re-solve         {cold_seconds:8.3f} s "
        f"({speedup:.1f}x slower, gate >= {params['required_speedup']:.1f}x)\n"
        f"  parity gap {parity_gap:.2e} (gate <= {PARITY_RTOL:.0e}), "
        f"frozen {warm.fraction_frozen:.1%}, "
        f"fallbacks {sum(report.fallback for report in warm_reports)}/3",
    )
    # The paper-bin deadline: steady-state warm re-solves must fit the
    # fig14 time bin even at 10^5 files.
    assert median_warm < PAPER_BIN_WIDTH_S
    assert speedup >= params["required_speedup"]
    assert parity_gap <= PARITY_RTOL
