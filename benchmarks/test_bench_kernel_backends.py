"""Benchmark: shared queueing kernels vs the pre-refactor inline code.

The kernel extraction (``repro/kernels/``) moved the Lindley scans, the
segmented fork-join reductions, the SSD-lane multi-server queue and the
batched systematic-sampling core out of the engines and behind a pluggable
array-API backend layer.  The refactor's performance contract is that the
default NumPy backend costs (at most) dispatch overhead: this benchmark
re-states the pre-refactor inline implementations verbatim and times both
against the kernels on the two workloads the engines actually run --

* the **fig11 batch workload**: per-node Lindley departure scans over the
  chunk-arrival layout of the batch simulation engine, equal-width
  fork-join maxima, and one batched systematic-sampling pass (the three
  hot kernels of ``repro/simulation/batch.py``), and
* the **cluster-replay workload**: grouped per-OSD FIFO departures,
  ragged fork-join ``segment_max`` over per-miss chunk reads, and the
  two-device constant-service SSD bank (the hot kernels of
  ``repro/cluster/replay.py``).

NumPy-backend kernel throughput must stay >= 0.9x the inline code on both
workloads (CI gate), and every kernel output must be bit-equal to its
inline counterpart.  When ``array_api_strict`` is importable its portable-
path timings are recorded as well (informational -- conformance, not
speed).  Results land in ``BENCH_kernel_backends.json``.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Tuple

import numpy as np
from conftest import print_report, write_bench_json

from repro.kernels import (
    fifo_departures_grouped,
    fork_join_max,
    lindley_departures,
    module_available,
    multi_server_departures,
    segment_max,
    systematic_sample_positions,
    use_kernel_backend,
)

#: Minimum NumPy-backend kernel throughput relative to the inline code.
#: The kernels add only argument validation and backend dispatch per call,
#: so parity is ~1.0x on these array sizes; 0.9x leaves noise headroom
#: while still catching an accidental slow path (e.g. the portable
#: doubling prefix-maximum running where the ufunc scan should).
REQUIRED_RELATIVE_THROUGHPUT = 0.9

#: Timing rounds per implementation (best-of, to shed scheduler noise).
ROUNDS = 5

SCALES = {
    "fast": {"num_requests": 150_000},
    "paper": {"num_requests": 600_000},
}


# ----------------------------------------------------------------------
# Pre-refactor inline implementations (verbatim, the timing baseline)
# ----------------------------------------------------------------------


def _inline_lindley(arrivals: np.ndarray, services: np.ndarray) -> np.ndarray:
    cumulative = np.cumsum(services)
    idle_offsets = np.maximum.accumulate(arrivals - (cumulative - services))
    return cumulative + idle_offsets


def _inline_fifo_grouped(groups, times, services, num_groups):
    order = np.lexsort((np.arange(times.size), times, groups))
    sorted_groups = groups[order]
    sorted_times = times[order]
    sorted_services = services[order]
    boundaries = np.searchsorted(sorted_groups, np.arange(num_groups + 1))
    departures_sorted = np.empty_like(sorted_times)
    for group in range(num_groups):
        low, high = int(boundaries[group]), int(boundaries[group + 1])
        if low == high:
            continue
        departures_sorted[low:high] = _inline_lindley(
            sorted_times[low:high], sorted_services[low:high]
        )
    departures = np.empty_like(departures_sorted)
    departures[order] = departures_sorted
    return departures


def _inline_multi_server(times, service, num_servers):
    departures = np.empty_like(times)
    for lane in range(num_servers):
        lane_times = times[lane::num_servers]
        lane_services = np.full(lane_times.size, float(service))
        departures[lane::num_servers] = _inline_lindley(lane_times, lane_services)
    return departures


def _inline_sample_positions(probs, order_uniforms, grid_uniforms, size):
    num_draws, num_keys = probs.shape
    order = np.argsort(order_uniforms, axis=1)
    shuffled = np.take_along_axis(probs, order, axis=1)
    cumulative = np.cumsum(shuffled, axis=1)
    cumulative *= size / cumulative[:, -1:]
    grid = grid_uniforms + np.arange(size, dtype=float)
    row_base = (np.arange(num_draws, dtype=float) * (size + 1))[:, None]
    flat_cumulative = (cumulative + row_base).ravel()
    flat_grid = (grid + row_base).ravel()
    flat_positions = np.searchsorted(flat_cumulative, flat_grid, side="right")
    positions = flat_positions.reshape(num_draws, size) - (
        np.arange(num_draws)[:, None] * num_keys
    )
    np.clip(positions, 0, num_keys - 1, out=positions)
    return np.take_along_axis(order, positions, axis=1)


# ----------------------------------------------------------------------
# Workload construction (seeded; shapes mirror the real engines)
# ----------------------------------------------------------------------


def _fig11_batch_workload(num_requests: int, seed: int = 2016) -> Dict[str, Any]:
    """Chunk-level arrays shaped like the fig11 batch-engine hot path.

    Fig. 11's fast scale runs (7,4)-coded reads over 12 storage nodes: each
    request fans out to ``k=4`` chunk reads on distinct nodes, every node
    is one FIFO Lindley queue over its time-sorted chunk arrivals, and the
    request completes at the fork-join maximum of its chunk departures.
    """
    rng = np.random.default_rng(seed)
    num_nodes, n_code, k_code = 12, 7, 4
    request_times = np.sort(rng.uniform(0.0, num_requests / 8.0, num_requests))
    # Each request's k chunks land on k distinct nodes (argsort trick).
    chunk_node = np.argsort(
        rng.random((num_requests, num_nodes)), axis=1
    )[:, :k_code].ravel()
    chunk_time = np.repeat(request_times, k_code)
    order = np.lexsort((chunk_time, chunk_node))
    sorted_time = chunk_time[order]
    sorted_node = chunk_node[order]
    boundaries = np.searchsorted(sorted_node, np.arange(num_nodes + 1))
    services = rng.exponential(0.35, num_requests * k_code)
    # Batched systematic sampling: one (requests, n) inclusion-probability
    # block, row totals == k, as the scheduler produces per file group.
    probabilities = rng.random((num_requests // 10, n_code)) + 0.25
    probabilities *= k_code / probabilities.sum(axis=1, keepdims=True)
    return {
        "k": k_code,
        "num_requests": num_requests,
        "num_nodes": num_nodes,
        "boundaries": boundaries,
        "sorted_time": sorted_time,
        "services": services,
        "probabilities": probabilities,
        "order_uniforms": rng.random(probabilities.shape),
        "grid_uniforms": rng.random((probabilities.shape[0], 1)),
    }


def _cluster_replay_workload(num_requests: int, seed: int = 7) -> Dict[str, Any]:
    """Arrays shaped like the epoch-replay latency assembly.

    The cluster-replay benchmark runs ~150 k requests at ~99 % hit ratio:
    hits go to the two-device SSD bank (constant service), misses fan out
    to ``k=4`` chunk reads on the HDD OSDs and fork-join at the slowest
    chunk before entering the SSD bank.
    """
    rng = np.random.default_rng(seed)
    num_osds, k_code, ssd_devices = 12, 4, 2
    num_misses = max(num_requests // 100, 1)  # ~99% hit ratio
    miss_chunks = num_misses * k_code
    osds = rng.integers(0, num_osds, miss_chunks)
    miss_times = np.repeat(np.sort(rng.uniform(0.0, num_requests / 4.0, num_misses)), k_code)
    services = rng.exponential(140.0, miss_chunks)  # ~HDD chunk ms
    starts = np.arange(num_misses, dtype=np.int64) * k_code
    ssd_entry = np.sort(rng.uniform(0.0, num_requests / 4.0, num_requests))
    return {
        "num_osds": num_osds,
        "osds": osds,
        "miss_times": miss_times,
        "services": services,
        "starts": starts,
        "ssd_entry": ssd_entry,
        "ssd_service_ms": 388.0,
        "ssd_devices": ssd_devices,
    }


# ----------------------------------------------------------------------
# Timing harness
# ----------------------------------------------------------------------


def _best_of(fn: Callable[[], Any], rounds: int = ROUNDS) -> Tuple[Any, float]:
    """Run ``fn`` ``rounds`` times; return (last result, best wall time)."""
    best = np.inf
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _run_fig11_inline(w: Dict[str, Any]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    departures = np.empty_like(w["sorted_time"])
    boundaries = w["boundaries"]
    for node in range(w["num_nodes"]):
        low, high = int(boundaries[node]), int(boundaries[node + 1])
        departures[low:high] = _inline_lindley(
            w["sorted_time"][low:high], w["services"][low:high]
        )
    completion = departures[: w["num_requests"] * w["k"]].reshape(
        w["num_requests"], w["k"]
    ).max(axis=1)
    selected = _inline_sample_positions(
        w["probabilities"], w["order_uniforms"], w["grid_uniforms"], w["k"]
    )
    return departures, completion, selected


def _run_fig11_kernel(w: Dict[str, Any]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    departures = np.empty_like(w["sorted_time"])
    boundaries = w["boundaries"]
    for node in range(w["num_nodes"]):
        low, high = int(boundaries[node]), int(boundaries[node + 1])
        departures[low:high] = lindley_departures(
            w["sorted_time"][low:high], w["services"][low:high]
        )
    completion = fork_join_max(
        departures[: w["num_requests"] * w["k"]], w["num_requests"], w["k"]
    )
    selected = systematic_sample_positions(
        w["probabilities"], w["order_uniforms"], w["grid_uniforms"], w["k"]
    )
    return departures, completion, selected


def _run_replay_inline(w: Dict[str, Any]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    departures = _inline_fifo_grouped(
        w["osds"], w["miss_times"], w["services"], w["num_osds"]
    )
    fork_join = np.maximum.reduceat(departures, w["starts"])
    ssd = _inline_multi_server(w["ssd_entry"], w["ssd_service_ms"], w["ssd_devices"])
    return departures, fork_join, ssd


def _run_replay_kernel(w: Dict[str, Any]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    departures = fifo_departures_grouped(
        w["osds"], w["miss_times"], w["services"], w["num_osds"]
    )
    fork_join = segment_max(departures, w["starts"])
    ssd = multi_server_departures(w["ssd_entry"], w["ssd_service_ms"], w["ssd_devices"])
    return departures, fork_join, ssd


def test_kernel_backend_parity(benchmark, scale):
    params = SCALES["paper" if scale == "paper" else "fast"]
    fig11 = _fig11_batch_workload(params["num_requests"])
    replay = _cluster_replay_workload(params["num_requests"])

    # Warm both paths once (allocator, backend resolution), then time.
    _run_fig11_inline(fig11), _run_fig11_kernel(fig11)
    _run_replay_inline(replay), _run_replay_kernel(replay)

    fig11_inline, fig11_inline_s = _best_of(lambda: _run_fig11_inline(fig11))
    fig11_kernel, fig11_kernel_s = _best_of(lambda: _run_fig11_kernel(fig11))
    replay_inline, replay_inline_s = _best_of(lambda: _run_replay_inline(replay))
    replay_kernel, replay_kernel_s = _best_of(lambda: _run_replay_kernel(replay))
    benchmark.pedantic(
        lambda: (_run_fig11_kernel(fig11), _run_replay_kernel(replay)),
        iterations=1, rounds=1,
    )

    # Bit-equality: the NumPy backend IS the inline implementation.
    for inline_out, kernel_out in zip(fig11_inline, fig11_kernel):
        np.testing.assert_array_equal(inline_out, kernel_out)
    for inline_out, kernel_out in zip(replay_inline, replay_kernel):
        np.testing.assert_array_equal(inline_out, kernel_out)

    fig11_ratio = fig11_inline_s / fig11_kernel_s
    replay_ratio = replay_inline_s / replay_kernel_s

    # Portable-path conformance timing (informational, no gate: the
    # doubling prefix-max and pure-gather scatters trade speed for
    # running on any array-API namespace).
    strict_seconds = None
    if module_available("array_api_strict"):
        with use_kernel_backend("array_api_strict"):
            _, strict_seconds = _best_of(
                lambda: (_run_fig11_kernel(fig11), _run_replay_kernel(replay)),
                rounds=1,
            )

    payload = {
        "name": "kernel_backends",
        "scale": scale,
        "num_requests": params["num_requests"],
        "fig11_inline_seconds": fig11_inline_s,
        "fig11_kernel_seconds": fig11_kernel_s,
        "fig11_relative_throughput": fig11_ratio,
        "cluster_replay_inline_seconds": replay_inline_s,
        "cluster_replay_kernel_seconds": replay_kernel_s,
        "cluster_replay_relative_throughput": replay_ratio,
        "array_api_strict_seconds": strict_seconds,
        "required_relative_throughput": REQUIRED_RELATIVE_THROUGHPUT,
        "rounds": ROUNDS,
    }
    write_bench_json("kernel_backends", payload)
    strict_line = (
        f"  array_api_strict portable path {strict_seconds:8.3f} s (informational)\n"
        if strict_seconds is not None
        else "  array_api_strict not installed (pip install repro[array-api])\n"
    )
    print_report(
        "Shared queueing kernels -- NumPy backend vs pre-refactor inline code",
        f"{params['num_requests']:,} requests per workload, best of {ROUNDS}:\n"
        f"  fig11 batch workload   inline {fig11_inline_s:8.4f} s   "
        f"kernel {fig11_kernel_s:8.4f} s   -> {fig11_ratio:.2f}x\n"
        f"  cluster-replay workload inline {replay_inline_s:8.4f} s   "
        f"kernel {replay_kernel_s:8.4f} s   -> {replay_ratio:.2f}x\n"
        + strict_line
        + f"  gate: kernel throughput >= {REQUIRED_RELATIVE_THROUGHPUT}x inline "
        "on both workloads, outputs bit-equal",
    )
    assert fig11_ratio >= REQUIRED_RELATIVE_THROUGHPUT
    assert replay_ratio >= REQUIRED_RELATIVE_THROUGHPUT
