"""Benchmark: fault-aware cluster replay throughput under a crash schedule.

The failure-suite gate: the epoch-batched engine replays a hot-set Zipf
trace while a seeded ``osd_crash`` schedule keeps each OSD down ~1% of the
time (crash rate x downtime = 0.01), forcing the fault-path classifier,
degraded-read re-routing and the merged miss/TTL/fault boundary clock to
run on every epoch.  The gate requires >= 1M replayed requests per second
wall-clock -- faults must stay a vectorised overlay, not a scalar detour.

The run also cross-checks the per-request reference engine on the same
trace and schedule: counters must match exactly and per-request latencies
to ~1e-9 (the engines share classification, randomness and fetch plan; see
``repro/cluster/replay.py``).  Results land in
``BENCH_degraded_replay.json``.
"""

from __future__ import annotations

import gc
import time

import numpy as np
from conftest import print_report, write_bench_json

from repro.cluster.cluster import ClusterConfig
from repro.cluster.replay import ClusterReplay, ReplayTrace

#: Required epoch-engine replay throughput under the 1% crash schedule
#: (requests per wall-clock second).  Measured ~2-3M on the reference
#: runner; the gate sits at 1M to absorb shared-runner noise while still
#: catching any fall-off-the-vectorised-path regression.
REQUIRED_REPLAYED_RPS = 1_000_000.0

#: The "1% schedule": each OSD crashes at ``CRASH_RATE`` per second and
#: stays down ``DOWNTIME_MS``, so its expected unavailable fraction is
#: ``CRASH_RATE * DOWNTIME_MS / 1000 = 0.01``.
CRASH_RATE = 1.0 / 6000.0
DOWNTIME_MS = 60_000.0

AGGREGATE_RATE = 4.0

SCALES = {
    "fast": {"num_objects": 1000, "duration_s": 75_000.0},
    "paper": {"num_objects": 1000, "duration_s": 450_000.0},
}


def _workload(num_objects: int, alpha: float = 1.8, total_rate: float = AGGREGATE_RATE):
    weights = 1.0 / np.arange(1, num_objects + 1) ** alpha
    weights /= weights.sum()
    return {
        f"obj-{index}": total_rate * float(weight)
        for index, weight in enumerate(weights)
    }


def test_degraded_replay_throughput(benchmark, scale):
    params = SCALES["paper" if scale == "paper" else "fast"]
    rates = _workload(params["num_objects"])
    config = ClusterConfig(
        object_size_mb=64,
        cache_capacity_mb=64 * 300,  # hot set fits: ~99% hit ratio
        seed=7,
    )
    trace = ReplayTrace.from_rates(rates, params["duration_s"], seed=11)
    replay = ClusterReplay(config, list(rates), policy="lru")
    fault_kwargs = {
        "faults": "osd_crash",
        "fault_params": {"crash_rate": CRASH_RATE, "downtime_ms": DOWNTIME_MS},
    }

    epoch_result = benchmark.pedantic(
        replay.run,
        args=(trace,),
        kwargs={"engine": "epoch", "seed": 3, **fault_kwargs},
        iterations=1,
        rounds=1,
    )
    # Best-of-3 wall clock: the gate compares against an absolute
    # requests-per-second floor, so shield it from one-off scheduler or
    # GC hiccups when the whole benchmark suite shares the process.
    epoch_seconds = float("inf")
    for _ in range(3):
        gc.collect()
        start = time.perf_counter()
        epoch_result = replay.run(trace, engine="epoch", seed=3, **fault_kwargs)
        epoch_seconds = min(epoch_seconds, time.perf_counter() - start)
    replayed_rps = trace.num_requests / epoch_seconds

    start = time.perf_counter()
    reference_result = replay.run(trace, engine="request", seed=3, **fault_kwargs)
    reference_seconds = time.perf_counter() - start

    # The schedule must actually exercise the fault path.
    assert epoch_result.faults == "osd_crash"
    assert epoch_result.degraded_reads > 0

    # Engine equivalence under faults: identical counters, ~1e-9 latencies.
    assert epoch_result.hits == reference_result.hits
    assert epoch_result.promotions == reference_result.promotions
    assert epoch_result.evictions_mb == reference_result.evictions_mb
    assert epoch_result.chunks_from_cache == reference_result.chunks_from_cache
    assert epoch_result.chunks_from_storage == reference_result.chunks_from_storage
    assert epoch_result.degraded_reads == reference_result.degraded_reads
    assert epoch_result.failed_reads == reference_result.failed_reads
    assert epoch_result.repair_jobs == reference_result.repair_jobs
    np.testing.assert_array_equal(
        epoch_result.served_mask, reference_result.served_mask
    )
    np.testing.assert_allclose(
        epoch_result.latencies_ms, reference_result.latencies_ms,
        rtol=1e-9, atol=1e-9,
    )

    write_bench_json(
        "degraded_replay",
        {
            "name": "degraded_replay",
            "scale": scale,
            "policy": "lru",
            "crash_rate": CRASH_RATE,
            "downtime_ms": DOWNTIME_MS,
            "requests": trace.num_requests,
            "hit_ratio": epoch_result.hit_ratio,
            "degraded_reads": epoch_result.degraded_reads,
            "failed_reads": epoch_result.failed_reads,
            "epoch_engine_seconds": epoch_seconds,
            "reference_engine_seconds": reference_seconds,
            "replayed_requests_per_second": replayed_rps,
            "speedup_vs_reference": reference_seconds / epoch_seconds,
            "mean_latency_ms": epoch_result.mean_latency_ms(),
            "p99_latency_ms": epoch_result.percentile_ms(99.0),
            "required_replayed_rps": REQUIRED_REPLAYED_RPS,
        },
    )
    print_report(
        "Degraded cluster replay -- epoch engine under the 1% crash schedule",
        f"{trace.num_requests} requests, hit ratio {epoch_result.hit_ratio:.1%}, "
        f"{epoch_result.degraded_reads} degraded / "
        f"{epoch_result.failed_reads} failed reads:\n"
        f"  epoch engine      {epoch_seconds:8.3f} s "
        f"({replayed_rps:,.0f} req/s, gate >= {REQUIRED_REPLAYED_RPS:,.0f})\n"
        f"  reference engine  {reference_seconds:8.3f} s "
        f"({reference_seconds / epoch_seconds:.1f}x slower)",
    )
    assert replayed_rps >= REQUIRED_REPLAYED_RPS
