"""Benchmark: Tables I, III, IV and V -- workload and device measurement tables."""

from __future__ import annotations

from conftest import print_report, timed_run

from repro.api import get_experiment

SPEC = get_experiment("tables")


def _run(scale: str):
    return SPEC.run(scale=scale)


def _metrics(result):
    return {
        "table_iv_rows": len(result.table_iv),
        "table_v_rows": len(result.table_v),
    }


def test_tables(benchmark, scale):
    result, _ = timed_run(benchmark, "tables", scale, _run, scale, metrics=_metrics)
    print_report("Tables I, III, IV, V", SPEC.format(result))
    for row in result.table_v:
        assert row.emulated_latency_ms == row.paper_latency_ms
    for row in result.table_iv:
        assert abs(row.emulated_mean_ms - row.paper_mean_ms) / row.paper_mean_ms < 0.05
