"""Benchmark: Fig. 5 / Table I -- cache-content evolution across time bins."""

from __future__ import annotations

from conftest import print_report, timed_run

from repro.api import get_experiment

SPEC = get_experiment("fig5")


def _run(scale: str):
    return SPEC.run(scale=scale)


def _metrics(result):
    return {
        "time_bins": len(result.cache_per_bin),
        "cache_capacity": result.cache_capacity,
    }


def test_fig5_evolution(benchmark, scale):
    result, _ = timed_run(
        benchmark, "fig5_evolution", scale, _run, scale, metrics=_metrics
    )
    print_report("Fig. 5 / Table I -- cache content evolution", SPEC.format(result))
    assert len(result.cache_per_bin) == 3
    for bin_content in result.cache_per_bin:
        assert 0 < sum(bin_content.values()) <= result.cache_capacity
