"""Benchmark: Fig. 5 / Table I -- cache-content evolution across time bins."""

from __future__ import annotations

from conftest import print_report, timed_run

from repro.experiments import fig5_evolution


def _metrics(result):
    return {
        "time_bins": len(result.cache_per_bin),
        "cache_capacity": result.cache_capacity,
    }


def test_fig5_evolution(benchmark, scale):
    result, _ = timed_run(
        benchmark, "fig5_evolution", scale, fig5_evolution.run, metrics=_metrics
    )
    print_report(
        "Fig. 5 / Table I -- cache content evolution",
        fig5_evolution.format_result(result),
    )
    assert len(result.cache_per_bin) == 3
    for bin_content in result.cache_per_bin:
        assert 0 < sum(bin_content.values()) <= result.cache_capacity
