"""Benchmark: Fig. 5 / Table I -- cache-content evolution across time bins."""

from __future__ import annotations

from conftest import print_report

from repro.experiments import fig5_evolution


def test_fig5_evolution(benchmark, scale):
    result = benchmark.pedantic(fig5_evolution.run, iterations=1, rounds=1)
    print_report(
        "Fig. 5 / Table I -- cache content evolution",
        fig5_evolution.format_result(result),
    )
    assert len(result.cache_per_bin) == 3
    for bin_content in result.cache_per_bin:
        assert 0 < sum(bin_content.values()) <= result.cache_capacity
