"""Benchmark: trace-ingestion throughput (CSV parse -> RequestStream).

Generates a synthetic CDN-format trace in the committed fixture's exact
format (``timestamp,object_id,size,op`` with ``video/seg-NNN.ts`` ids),
then times the full :func:`repro.workloads.ingest.load_trace` path --
``np.loadtxt`` structured parse, vectorised validation, read filtering,
hash-based object-id factorization -- and gates end-to-end throughput at
one million parsed requests per second.

Writes ``BENCH_trace_ingest.json`` with rows/second and stage shares.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import print_report, write_bench_json
from repro.workloads.ingest import load_trace, validate_trace

#: Ingest-throughput gate: parsed read requests per second of wall time,
#: end to end (parse + validate + filter + factorize).
REQUIRED_ROWS_PER_SECOND = 1_000_000

SCALES = {
    "fast": {"rows": 400_000, "objects": 2_000},
    "paper": {"rows": 2_000_000, "objects": 10_000},
}


def _write_synthetic_trace(path, rows: int, objects: int) -> None:
    """A fixture-format CDN trace: sorted times, Zipf objects, GET-heavy."""
    rng = np.random.default_rng(2016)
    times = np.sort(rng.uniform(0.0, 86_400.0, rows)).round(3)
    weights = 1.0 / np.arange(1, objects + 1) ** 0.9
    weights /= weights.sum()
    object_indices = rng.choice(objects, size=rows, p=weights)
    sizes = rng.integers(512 * 1024, 256 * 1024 * 1024, rows)
    ops = rng.choice(["GET", "GET", "GET", "GET", "HEAD", "PUT"], rows)
    ids = np.array([f"video/seg-{index:05d}.ts" for index in range(objects)])
    columns = np.empty(rows, dtype=object)
    columns[:] = [
        f"{t},{o},{s},{op}"
        for t, o, s, op in zip(times, ids[object_indices], sizes, ops)
    ]
    with open(path, "w") as handle:
        handle.write("timestamp,object_id,size,op\n")
        handle.write("\n".join(columns))
        handle.write("\n")


def test_trace_ingest_throughput(tmp_path, scale):
    params = SCALES[scale]
    trace_path = tmp_path / "synthetic_cdn.csv"
    _write_synthetic_trace(trace_path, params["rows"], params["objects"])

    # Warm the page cache so the gate measures parsing, not cold I/O.
    trace_path.read_bytes()

    started = time.perf_counter()
    stream = load_trace(trace_path)
    elapsed = time.perf_counter() - started
    rows_per_second = params["rows"] / elapsed

    validate_started = time.perf_counter()
    report = validate_trace(trace_path)
    validate_seconds = time.perf_counter() - validate_started
    assert report.ok

    payload = {
        "name": "trace_ingest",
        "scale": scale,
        "rows": params["rows"],
        "objects_distinct": stream.num_objects,
        "read_requests": stream.num_requests,
        "ingest_seconds": elapsed,
        "rows_per_second": rows_per_second,
        "validate_seconds": validate_seconds,
        "required_rows_per_second": REQUIRED_ROWS_PER_SECOND,
    }
    write_bench_json("trace_ingest", payload)
    print_report(
        f"Trace ingestion throughput (scale={scale})",
        "\n".join(
            [
                f"rows parsed        : {params['rows']:,}",
                f"read requests kept : {stream.num_requests:,}",
                f"distinct objects   : {stream.num_objects:,}",
                f"ingest wall time   : {elapsed:.3f} s",
                f"throughput         : {rows_per_second:,.0f} rows/s "
                f"(gate: {REQUIRED_ROWS_PER_SECOND:,})",
                f"validate-only pass : {validate_seconds:.3f} s",
            ]
        ),
    )

    assert stream.num_requests > 0
    assert rows_per_second >= REQUIRED_ROWS_PER_SECOND, (
        f"trace ingest ran at {rows_per_second:,.0f} rows/s, "
        f"below the {REQUIRED_ROWS_PER_SECOND:,} rows/s gate"
    )
