"""Benchmark: Fig. 6 -- impact of placement and arrival rate on the cache."""

from __future__ import annotations

from conftest import print_report, timed_run

from repro.api import get_experiment

SPEC = get_experiment("fig6")


def _run(scale: str):
    return SPEC.run(scale=scale)


def _metrics(result):
    return {
        "first_two_final": result.first_two_series()[-1],
        "last_six_final": result.last_six_series()[-1],
    }


def test_fig6_placement(benchmark, scale):
    result, _ = timed_run(
        benchmark, "fig6_placement", scale, _run, scale, metrics=_metrics
    )
    print_report(
        "Fig. 6 -- cache allocation vs arrival rate of the first two files",
        SPEC.format(result),
    )
    first_two = result.first_two_series()
    last_six = result.last_six_series()
    assert first_two[0] <= first_two[-1]
    assert last_six[0] >= last_six[-1]
