"""Gate-field checker for the committed ``BENCH_*.json`` perf records.

The benchmark harness rewrites every ``BENCH_<name>.json`` wholesale, so
raw wall-clock noise used to churn the committed files on every PR.  The
fix is a split:

* benchmark runs write fresh JSON into ``benchmarks/out/`` (gitignored),
* the committed root files are the *gate record* -- they only change when
  a gate verdict or a gate-relevant field actually moves,
* this script evaluates the gates and decides when a refresh is due.

Usage::

    python benchmarks/compare.py check [FILES...]
        Evaluate every gate in the given BENCH files (default: the
        committed BENCH_*.json at the repository root).  Exit 1 if any
        gate fails.  Files without registered gates are timing-only and
        always pass.

    python benchmarks/compare.py check --fresh benchmarks/out
        Same, against a directory of freshly generated files (CI mode).

    python benchmarks/compare.py promote [--fresh benchmarks/out]
        Copy fresh files over the committed root records, but only those
        whose gate-relevant fields differ (new file, changed verdict, or
        changed threshold).  Pure timing drift never touches the diff.

Gates mirror the assertions inside ``benchmarks/test_bench_*.py``; a
threshold given as a string names a field of the same payload (so the
record stays self-describing), a literal is compared directly.
"""

from __future__ import annotations

import argparse
import json
import operator
import shutil
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_FRESH_DIR = Path(__file__).resolve().parent / "out"

_OPS = {
    ">=": operator.ge,
    "<=": operator.le,
    ">": operator.gt,
    "<": operator.lt,
    "==": operator.eq,
}


@dataclass(frozen=True)
class Gate:
    """One gate: ``payload[field] <op> threshold``.

    ``threshold`` may be a literal or the name of another payload field
    (e.g. ``"required_speedup"``).  ``when`` optionally names a boolean
    payload field that must be true for the gate to be enforced; when it
    is false the gate is recorded as skipped (e.g. the parallel fan-out
    gate on single-core machines).
    """

    field: str
    op: str
    threshold: Union[str, float, int, bool]
    when: Optional[str] = None

    def evaluate(self, payload: Dict[str, Any]) -> Tuple[str, str]:
        """Return ``(verdict, detail)`` with verdict PASS/FAIL/SKIP."""
        if self.when is not None and not payload.get(self.when, False):
            return "SKIP", f"{self.field} ({self.when} is false)"
        if self.field not in payload:
            return "FAIL", f"{self.field} missing from payload"
        value = payload[self.field]
        if isinstance(self.threshold, str):
            if self.threshold not in payload:
                return "FAIL", f"threshold field {self.threshold} missing"
            limit = payload[self.threshold]
        else:
            limit = self.threshold
        ok = _OPS[self.op](value, limit)
        return ("PASS" if ok else "FAIL"), f"{self.field}={value!r} {self.op} {limit!r}"

    def relevant_fields(self) -> List[str]:
        fields = [self.field]
        if isinstance(self.threshold, str):
            fields.append(self.threshold)
        if self.when is not None:
            fields.append(self.when)
        return fields


#: name (the ``name`` field / ``BENCH_<name>.json``) -> its gates.
GATES: Dict[str, List[Gate]] = {
    "cluster_replay": [Gate("speedup_vs_legacy", ">=", "required_speedup")],
    "degraded_replay": [
        Gate("replayed_requests_per_second", ">=", "required_replayed_rps")
    ],
    "kernel_backends": [
        Gate("fig11_relative_throughput", ">=", "required_relative_throughput"),
        Gate(
            "cluster_replay_relative_throughput",
            ">=",
            "required_relative_throughput",
        ),
    ],
    "online_resolve": [
        Gate("warm_speedup", ">=", "required_speedup"),
        Gate("parity_gap", "<=", "parity_rtol"),
    ],
    "trace_ingest": [Gate("rows_per_second", ">=", "required_rows_per_second")],
    "fig11_engine_speedup": [
        Gate("speedup", ">=", 20.0),
        Gate("latency_relative_gap", "<", 0.10),
    ],
    "parallel_sweep": [
        Gate("bit_equal", "==", True),
        Gate("cached_bit_equal", "==", True),
        Gate("cached_solver_calls", "==", "required_cached_solver_calls"),
        Gate("cache_hit_speedup", ">=", "required_speedup"),
        Gate(
            "parallel_speedup",
            ">=",
            "required_speedup",
            when="parallel_gate_enforced",
        ),
    ],
}


def bench_name(path: Path, payload: Dict[str, Any]) -> str:
    """The gate-table key: the payload's ``name``, else the file stem."""
    name = payload.get("name")
    if isinstance(name, str) and name:
        return name
    stem = path.stem
    return stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem


def gate_fields(name: str) -> List[str]:
    """Every payload field that participates in ``name``'s gates."""
    fields: List[str] = []
    for gate in GATES.get(name, []):
        for field in gate.relevant_fields():
            if field not in fields:
                fields.append(field)
    return fields


def gate_snapshot(name: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    """The gate-relevant slice of a payload: field values and verdicts.

    Floating-point gate inputs (speedups, throughputs) drift run to run,
    so the snapshot reduces each gate to its verdict plus any exact-typed
    inputs (bools, ints, thresholds given as literals in the table stay
    out -- they live in this file).  Two snapshots are equal exactly when
    no gate outcome or discrete gate input changed.
    """
    snapshot: Dict[str, Any] = {}
    for gate in GATES.get(name, []):
        verdict, _ = gate.evaluate(payload)
        snapshot[f"verdict:{gate.field}"] = verdict
        for field in gate.relevant_fields():
            value = payload.get(field)
            if isinstance(value, (bool, int, str)) or value is None:
                snapshot[f"field:{field}"] = value
    return snapshot


def load(path: Path) -> Dict[str, Any]:
    with path.open() as handle:
        return json.load(handle)


def check(paths: Sequence[Path]) -> int:
    """Evaluate every gate; print a verdict table; return the exit code."""
    failures = 0
    for path in sorted(paths):
        payload = load(path)
        name = bench_name(path, payload)
        gates = GATES.get(name)
        if not gates:
            print(f"  ok    {path.name}: timing-only (no gates)")
            continue
        for gate in gates:
            verdict, detail = gate.evaluate(payload)
            marker = {"PASS": "  ok  ", "SKIP": " skip ", "FAIL": " FAIL "}[verdict]
            print(f"{marker}{path.name}: {detail}")
            if verdict == "FAIL":
                failures += 1
    if failures:
        print(f"\n{failures} gate(s) failed.")
        return 1
    print("\nAll gates passed.")
    return 0


def promote(fresh_dir: Path) -> int:
    """Copy fresh BENCH files to the repo root iff their gates moved."""
    fresh_files = sorted(fresh_dir.glob("BENCH_*.json"))
    if not fresh_files:
        print(f"No BENCH_*.json under {fresh_dir}; run the benchmarks first.")
        return 1
    promoted = 0
    for fresh_path in fresh_files:
        fresh = load(fresh_path)
        name = bench_name(fresh_path, fresh)
        committed_path = REPO_ROOT / fresh_path.name
        if committed_path.exists():
            committed = load(committed_path)
            if gate_snapshot(name, fresh) == gate_snapshot(name, committed):
                print(f"  keep  {fresh_path.name}: gates unchanged (timing noise only)")
                continue
            reason = "gate fields changed"
        else:
            reason = "new benchmark"
        shutil.copyfile(fresh_path, committed_path)
        promoted += 1
        print(f" write  {fresh_path.name}: {reason}")
    print(f"\n{promoted} file(s) promoted to the repository root.")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="benchmarks/compare.py", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)
    check_cmd = sub.add_parser("check", help="evaluate BENCH gate fields")
    check_cmd.add_argument("files", nargs="*", type=Path)
    check_cmd.add_argument(
        "--fresh",
        type=Path,
        default=None,
        metavar="DIR",
        help="check the freshly generated files in DIR instead of the "
        "committed root records",
    )
    promote_cmd = sub.add_parser(
        "promote", help="refresh committed records whose gates moved"
    )
    promote_cmd.add_argument(
        "--fresh", type=Path, default=DEFAULT_FRESH_DIR, metavar="DIR"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "promote":
        return promote(args.fresh)
    if args.files:
        paths = list(args.files)
    elif args.fresh is not None:
        paths = sorted(args.fresh.glob("BENCH_*.json"))
        if not paths:
            print(f"No BENCH_*.json under {args.fresh}.")
            return 1
    else:
        paths = sorted(REPO_ROOT.glob("BENCH_*.json"))
    return check(paths)


if __name__ == "__main__":
    sys.exit(main())
