"""Benchmark: Fig. 7 -- chunk requests served by cache vs storage per slot."""

from __future__ import annotations

from conftest import print_report

from repro.experiments import fig7_scheduling


def _run(scale: str):
    if scale == "paper":
        return fig7_scheduling.run()
    return fig7_scheduling.run(num_objects=200, cache_capacity_chunks=250)


def test_fig7_scheduling(benchmark, scale):
    result = benchmark.pedantic(_run, args=(scale,), iterations=1, rounds=1)
    print_report(
        "Fig. 7 -- cache vs storage chunk scheduling",
        fig7_scheduling.format_result(result),
    )
    for series in result.series:
        assert abs(series.cache_fraction - series.expected_cache_fraction) < 0.1
