"""Benchmark: Fig. 7 -- chunk requests served by cache vs storage per slot.

Runs on the vectorised batch simulation engine (the experiment's default).
"""

from __future__ import annotations

from conftest import print_report, timed_run

from repro.api import get_experiment

SPEC = get_experiment("fig7")


def _run(scale: str):
    return SPEC.run(scale=scale)


def _metrics(result):
    return {
        "engine": "batch",
        "num_objects": result.num_objects,
        "cache_fractions": [series.cache_fraction for series in result.series],
    }


def test_fig7_scheduling(benchmark, scale):
    result, _ = timed_run(
        benchmark, "fig7_scheduling", scale, _run, scale, metrics=_metrics
    )
    print_report("Fig. 7 -- cache vs storage chunk scheduling", SPEC.format(result))
    for series in result.series:
        assert abs(series.cache_fraction - series.expected_cache_fraction) < 0.1
