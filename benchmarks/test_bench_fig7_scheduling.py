"""Benchmark: Fig. 7 -- chunk requests served by cache vs storage per slot.

Runs on the vectorised batch simulation engine (the experiment's default).
"""

from __future__ import annotations

from conftest import print_report, timed_run

from repro.experiments import fig7_scheduling


def _run(scale: str):
    if scale == "paper":
        return fig7_scheduling.run()
    return fig7_scheduling.run(num_objects=200, cache_capacity_chunks=250)


def _metrics(result):
    return {
        "engine": "batch",
        "num_objects": result.num_objects,
        "cache_fractions": [series.cache_fraction for series in result.series],
    }


def test_fig7_scheduling(benchmark, scale):
    result, _ = timed_run(
        benchmark, "fig7_scheduling", scale, _run, scale, metrics=_metrics
    )
    print_report(
        "Fig. 7 -- cache vs storage chunk scheduling",
        fig7_scheduling.format_result(result),
    )
    for series in result.series:
        assert abs(series.cache_fraction - series.expected_cache_fraction) < 0.1
