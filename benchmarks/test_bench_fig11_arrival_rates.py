"""Benchmark: Fig. 11 -- latency vs workload intensity, optimal vs LRU caching."""

from __future__ import annotations

from conftest import print_report

from repro.experiments import fig11_arrival_rates


def _run(scale: str):
    if scale == "paper":
        return fig11_arrival_rates.run()
    return fig11_arrival_rates.run(
        aggregate_rates=(0.5, 2.0, 8.0),
        num_objects=400,
        duration_s=300.0,
    )


def test_fig11_arrival_rates(benchmark, scale):
    result = benchmark.pedantic(_run, args=(scale,), iterations=1, rounds=1)
    print_report(
        "Fig. 11 -- latency vs aggregate arrival rate (optimal vs Ceph LRU)",
        fig11_arrival_rates.format_result(result),
    )
    assert result.mean_improvement() > 0.0
    low, high = result.comparisons[0], result.comparisons[-1]
    assert high.baseline_latency_ms > low.baseline_latency_ms
