"""Benchmark: Fig. 11 -- latency vs workload intensity, optimal vs LRU caching.

Also times the event vs batch simulation engines on the Fig. 11 workload
and records the speedup in ``BENCH_fig11_engine_speedup.json`` -- the
machine-readable perf trajectory of the vectorised engine.
"""

from __future__ import annotations

from conftest import print_report, timed_run, write_bench_json

from repro.api import get_experiment
from repro.experiments.fig11_arrival_rates import measure_engine_speedup

SPEC = get_experiment("fig11")

#: Reduced sweep for the fast benchmark scale (overrides the registry's
#: fast parameters: higher top rate, shorter emulated run, always simulated).
FAST_OVERRIDES = {
    "aggregate_rates": (0.5, 2.0, 8.0),
    "num_objects": 400,
    "duration_s": 300.0,
}


def _run(scale: str):
    overrides = {} if scale == "paper" else dict(FAST_OVERRIDES)
    return SPEC.run(scale=scale, simulate=True, **overrides)


def _metrics(result):
    return {
        "engine": "batch",
        "mean_improvement": result.mean_improvement(),
        "simulated_latencies_ms": [
            comparison.simulated_latency_ms for comparison in result.comparisons
        ],
    }


def test_fig11_arrival_rates(benchmark, scale):
    result, _ = timed_run(
        benchmark, "fig11_arrival_rates", scale, _run, scale, metrics=_metrics
    )
    print_report(
        "Fig. 11 -- latency vs aggregate arrival rate (optimal vs Ceph LRU)",
        SPEC.format(result),
    )
    assert result.mean_improvement() > 0.0
    low, high = result.comparisons[0], result.comparisons[-1]
    assert high.baseline_latency_ms > low.baseline_latency_ms
    for comparison in result.comparisons:
        assert comparison.simulated_latency_ms is not None


def test_fig11_engine_speedup(benchmark, scale):
    """Batch engine must beat the event engine >= 20x on the Fig. 11 workload."""
    if scale == "paper":
        kwargs = dict(aggregate_rate=8.0, num_objects=1000, duration_s=1800.0)
    else:
        kwargs = dict(aggregate_rate=8.0, num_objects=400, duration_s=1800.0)

    speedup = benchmark.pedantic(
        measure_engine_speedup,
        kwargs=kwargs,
        iterations=1,
        rounds=1,
    )
    write_bench_json(
        "fig11_engine_speedup",
        {
            "name": "fig11_engine_speedup",
            "scale": scale,
            "workload": kwargs,
            "requests": speedup.requests,
            "event_seconds": speedup.event_seconds,
            "batch_seconds": speedup.batch_seconds,
            "speedup": speedup.speedup,
            "event_requests_per_second": speedup.requests_per_second("event"),
            "batch_requests_per_second": speedup.requests_per_second("batch"),
            "event_mean_latency_ms": speedup.event_mean_latency_ms,
            "batch_mean_latency_ms": speedup.batch_mean_latency_ms,
            "latency_relative_gap": speedup.latency_relative_gap,
        },
    )
    print_report(
        "Engine speedup -- event vs batch on the Fig. 11 workload",
        f"{speedup.requests} requests: event engine {speedup.event_seconds:.3f} s, "
        f"batch engine {speedup.batch_seconds:.4f} s -> {speedup.speedup:.1f}x "
        f"(mean latency gap {speedup.latency_relative_gap:.2%})",
    )
    assert speedup.speedup >= 20.0
    assert speedup.latency_relative_gap < 0.10
