"""Benchmark: the parallel sweep executor and result cache on the Fig. 11 sweep.

Three gates on ``repro.exec`` (all recorded in ``BENCH_parallel_sweep.json``):

* **Determinism** -- the ``jobs=4`` sweep must be bit-identical (same
  serialized JSON) to the ``jobs=1`` sweep.  Enforced unconditionally.
* **Zero solver calls when cached** -- a second invocation of the same
  sweep against a warm :class:`~repro.exec.ResultCache` must complete
  without a single :meth:`CacheOptimizer.optimize` call, and must be
  >= 2.5x faster than the uncached serial sweep.  Enforced
  unconditionally (cache hits are CPU-count independent).
* **Parallel speedup** -- ``jobs=4`` must beat ``jobs=1`` by >= 2.5x
  wall-clock.  A process pool cannot beat serial on a single core, so
  this gate is enforced only where >= 4 CPUs are available (the
  ``parallel_gate_enforced`` field records whether it was); the measured
  speedup is always written to the JSON either way.

At the default fast scale the sweep is a reduced six-point Fig. 11 grid;
``SPROUT_BENCH_SCALE=paper`` runs the paper's five-rate full-size sweep.
"""

from __future__ import annotations

import time

from conftest import print_report, write_bench_json

from repro.api import get_experiment
from repro.api.serialize import json_dumps, to_jsonable
from repro.core.algorithm import CacheOptimizer
from repro.exec import ResultCache, available_cpus

SPEC = get_experiment("fig11")

REQUIRED_SPEEDUP = 2.5
JOBS = 4

#: Reduced sweep for the fast benchmark scale: six rate points (enough for
#: four workers to see real fan-out) on a smaller emulated cluster.
FAST_OVERRIDES = {
    "aggregate_rates": (0.5, 1.0, 2.0, 4.0, 6.0, 8.0),
    "num_objects": 400,
    "duration_s": 300.0,
}


def _run(scale: str, jobs: int, cache: ResultCache | None):
    overrides = {} if scale == "paper" else dict(FAST_OVERRIDES)
    return SPEC.run(scale=scale, simulate=True, jobs=jobs, cache=cache, **overrides)


def _fingerprint(result) -> str:
    return json_dumps(to_jsonable(result))


def test_parallel_sweep(benchmark, scale, monkeypatch, tmp_path):
    cpus = available_cpus()

    # Serial reference (timed under pytest-benchmark like every other gate).
    start = time.perf_counter()
    serial = benchmark.pedantic(_run, args=(scale, 1, None), iterations=1, rounds=1)
    serial_seconds = time.perf_counter() - start

    # Parallel run of the identical sweep.
    start = time.perf_counter()
    parallel = _run(scale, JOBS, None)
    parallel_seconds = time.perf_counter() - start
    parallel_speedup = serial_seconds / parallel_seconds
    bit_equal = _fingerprint(serial) == _fingerprint(parallel)

    # Cache gate: warm the cache once, then re-run the sweep with the
    # solver instrumented -- every point must be a hit, so the solver
    # must never run and the sweep must be >= 2.5x faster than serial.
    cache = ResultCache(tmp_path / "cache")
    warmed = _run(scale, 1, cache)
    solver_calls = {"count": 0}
    original_optimize = CacheOptimizer.optimize

    def counting_optimize(self, *args, **kwargs):
        solver_calls["count"] += 1
        return original_optimize(self, *args, **kwargs)

    monkeypatch.setattr(CacheOptimizer, "optimize", counting_optimize)
    start = time.perf_counter()
    cached = _run(scale, 1, cache)
    cache_hit_seconds = time.perf_counter() - start
    monkeypatch.setattr(CacheOptimizer, "optimize", original_optimize)
    cache_hit_speedup = serial_seconds / cache_hit_seconds
    cached_bit_equal = _fingerprint(warmed) == _fingerprint(cached)

    parallel_gate_enforced = cpus >= JOBS
    write_bench_json(
        "parallel_sweep",
        {
            "name": "parallel_sweep",
            "scale": scale,
            "num_points": len(serial.comparisons),
            "jobs": JOBS,
            "available_cpus": cpus,
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "parallel_speedup": parallel_speedup,
            "parallel_gate_enforced": parallel_gate_enforced,
            "bit_equal": bit_equal,
            "cache_hit_seconds": cache_hit_seconds,
            "cache_hit_speedup": cache_hit_speedup,
            "cached_solver_calls": solver_calls["count"],
            "cached_bit_equal": cached_bit_equal,
            "cache_entries": len(cache),
            "required_speedup": REQUIRED_SPEEDUP,
            "required_cached_solver_calls": 0,
        },
    )
    print_report(
        "Parallel sweep -- fig11 over sweep_map (jobs=1 vs jobs=4 vs cached)",
        f"{len(serial.comparisons)} rate points on {cpus} CPU(s):\n"
        f"  jobs=1   {serial_seconds:8.3f} s\n"
        f"  jobs={JOBS}   {parallel_seconds:8.3f} s "
        f"({parallel_speedup:.2f}x, gate >= {REQUIRED_SPEEDUP}x "
        f"{'enforced' if parallel_gate_enforced else 'recorded only: < 4 CPUs'}; "
        f"bit-equal: {bit_equal})\n"
        f"  cached   {cache_hit_seconds:8.3f} s "
        f"({cache_hit_speedup:.1f}x, {solver_calls['count']} solver calls, "
        f"bit-equal: {cached_bit_equal})",
    )

    # Determinism and cache gates hold everywhere.
    assert bit_equal, "jobs=4 sweep is not bit-identical to jobs=1"
    assert cached_bit_equal, "cached sweep is not bit-identical to the fresh one"
    assert solver_calls["count"] == 0, "cached sweep re-ran the solver"
    assert cache_hit_speedup >= REQUIRED_SPEEDUP
    # The wall-clock fan-out gate needs actual cores to fan out onto.
    if parallel_gate_enforced:
        assert parallel_speedup >= REQUIRED_SPEEDUP
