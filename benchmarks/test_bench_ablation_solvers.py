"""Ablation benchmark: Prob-Pi solver choice and exact vs functional caching.

Two design choices called out in DESIGN.md are benchmarked here:

* the Prob-Pi solver (projected gradient vs Frank-Wolfe vs SLSQP) -- all
  three must reach essentially the same objective, with projected gradient
  being the fastest at scale, and
* functional caching vs exact caching with the *same* per-file allocation --
  the structural claim of Section III that functional caching is never
  worse.

Solvers are resolved through the ``repro.api`` solver registry, so any
newly registered backend can be benchmarked the same way.
"""

from __future__ import annotations

import numpy as np
from conftest import print_report, timed_run

from repro.api import get_solver
from repro.baselines.exact import popularity_allocation
from repro.baselines.static import exact_vs_functional_bounds
from repro.workloads.defaults import paper_default_model


def _optimize(solver_name: str):
    model = paper_default_model(num_files=60, cache_capacity=30, seed=3, rate_scale=8.0)
    solver = get_solver(solver_name)
    return solver.optimize(model, tolerance=0.01, pi_max_iterations=80)


def _solver_metrics(outcome):
    return {
        "objective": outcome.final_objective,
        "outer_iterations": outcome.outer_iterations,
        "inner_solves": outcome.inner_solves,
    }


def test_ablation_projected_gradient(benchmark, scale):
    outcome, _ = timed_run(
        benchmark,
        "ablation_projected_gradient",
        scale,
        _optimize,
        "projected_gradient",
        metrics=_solver_metrics,
    )
    print_report(
        "Ablation -- Prob-Pi solver: projected gradient",
        f"objective = {outcome.final_objective:.4f} s, "
        f"outer iterations = {outcome.outer_iterations}",
    )
    assert outcome.converged


def test_ablation_frank_wolfe(benchmark, scale):
    outcome, _ = timed_run(
        benchmark,
        "ablation_frank_wolfe",
        scale,
        _optimize,
        "frank_wolfe",
        metrics=_solver_metrics,
    )
    print_report(
        "Ablation -- Prob-Pi solver: Frank-Wolfe",
        f"objective = {outcome.final_objective:.4f} s, "
        f"outer iterations = {outcome.outer_iterations}",
    )
    reference = _optimize("projected_gradient")
    assert outcome.final_objective <= reference.final_objective * 1.10 + 1e-6


def test_ablation_functional_vs_exact(benchmark, scale):
    model = paper_default_model(num_files=80, cache_capacity=40, seed=5, rate_scale=8.0)
    allocation = popularity_allocation(model)

    def run():
        return exact_vs_functional_bounds(model, allocation)

    comparison, _ = timed_run(
        benchmark, "ablation_functional_vs_exact", scale, run
    )
    functional = np.array([v["functional"] for v in comparison.values()])
    exact = np.array([v["exact"] for v in comparison.values()])
    gain = 1.0 - functional.sum() / exact.sum()
    print_report(
        "Ablation -- functional vs exact caching (same allocation)",
        f"mean functional bound = {functional.mean():.3f} s, "
        f"mean exact bound = {exact.mean():.3f} s, "
        f"aggregate latency advantage of functional caching = {gain:.1%}",
    )
    # Both policies here use uniform (not optimized) scheduling, so the
    # guarantee of Section III applies to the aggregate objective rather
    # than to every file in isolation (the two policies induce different
    # node loads for the *other* files).
    assert functional.sum() <= exact.sum() * 1.02
