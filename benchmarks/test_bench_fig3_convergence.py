"""Benchmark: Fig. 3 -- convergence of Algorithm 1 across cache sizes."""

from __future__ import annotations

from conftest import print_report, timed_run

from repro.api import get_experiment

SPEC = get_experiment("fig3")


def _run(scale: str):
    return SPEC.run(scale=scale)


def _metrics(result):
    return {
        "objective": result.curves[-1].final_latency,
        "max_outer_iterations": result.max_iterations(),
        "num_files": result.num_files,
        "cache_sizes": [curve.cache_size for curve in result.curves],
    }


def test_fig3_convergence(benchmark, scale):
    result, _ = timed_run(
        benchmark, "fig3_convergence", scale, _run, scale, metrics=_metrics
    )
    print_report("Fig. 3 -- convergence of Algorithm 1", SPEC.format(result))
    assert result.max_iterations() < 20
    for curve in result.curves:
        assert curve.converged
