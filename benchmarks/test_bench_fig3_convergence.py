"""Benchmark: Fig. 3 -- convergence of Algorithm 1 across cache sizes."""

from __future__ import annotations

from conftest import print_report

from repro.experiments import fig3_convergence


def _run(scale: str):
    if scale == "paper":
        return fig3_convergence.run()
    return fig3_convergence.run(cache_sizes=(20, 40, 60, 80, 100), num_files=100)


def test_fig3_convergence(benchmark, scale):
    result = benchmark.pedantic(_run, args=(scale,), iterations=1, rounds=1)
    print_report(
        "Fig. 3 -- convergence of Algorithm 1", fig3_convergence.format_result(result)
    )
    assert result.max_iterations() < 20
    for curve in result.curves:
        assert curve.converged
