"""Benchmark: Fig. 3 -- convergence of Algorithm 1 across cache sizes."""

from __future__ import annotations

from conftest import print_report, timed_run

from repro.experiments import fig3_convergence


def _run(scale: str):
    if scale == "paper":
        return fig3_convergence.run()
    return fig3_convergence.run(cache_sizes=(20, 40, 60, 80, 100), num_files=100)


def _metrics(result):
    return {
        "objective": result.curves[-1].final_latency,
        "max_outer_iterations": result.max_iterations(),
        "num_files": result.num_files,
        "cache_sizes": [curve.cache_size for curve in result.curves],
    }


def test_fig3_convergence(benchmark, scale):
    result, _ = timed_run(
        benchmark, "fig3_convergence", scale, _run, scale, metrics=_metrics
    )
    print_report(
        "Fig. 3 -- convergence of Algorithm 1", fig3_convergence.format_result(result)
    )
    assert result.max_iterations() < 20
    for curve in result.curves:
        assert curve.converged
