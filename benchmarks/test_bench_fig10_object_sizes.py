"""Benchmark: Fig. 10 -- latency per object size, optimal vs LRU caching."""

from __future__ import annotations

from conftest import print_report, timed_run

from repro.api import get_experiment

SPEC = get_experiment("fig10")

#: Reduced sweep for the fast benchmark scale (overrides the registry's
#: fast parameters: fewer sizes, shorter emulated run, always simulated).
FAST_OVERRIDES = {
    "object_sizes_mb": (16, 64),
    "num_objects": 300,
    "duration_s": 300.0,
    "rate_scale": 3.0,
}


def _run(scale: str):
    overrides = {} if scale == "paper" else dict(FAST_OVERRIDES)
    return SPEC.run(scale=scale, simulate=True, **overrides)


def _metrics(result):
    return {
        "engine": "batch",
        "mean_improvement": result.mean_improvement(),
        "simulated_latencies_ms": [
            comparison.simulated_latency_ms for comparison in result.comparisons
        ],
    }


def test_fig10_object_sizes(benchmark, scale):
    result, _ = timed_run(
        benchmark, "fig10_object_sizes", scale, _run, scale, metrics=_metrics
    )
    print_report(
        "Fig. 10 -- latency per object size (optimal vs Ceph LRU cache tier)",
        SPEC.format(result),
    )
    for comparison in result.comparisons:
        assert comparison.optimal_latency_ms <= comparison.baseline_latency_ms * 1.05
        # Fully-cached configurations legitimately simulate to ~zero latency.
        assert comparison.simulated_latency_ms is not None
        assert comparison.simulated_latency_ms >= 0.0
