"""Benchmark: Fig. 10 -- latency per object size, optimal vs LRU caching."""

from __future__ import annotations

from conftest import print_report

from repro.experiments import fig10_object_sizes


def _run(scale: str):
    if scale == "paper":
        return fig10_object_sizes.run()
    return fig10_object_sizes.run(
        object_sizes_mb=(16, 64),
        num_objects=300,
        duration_s=300.0,
        rate_scale=3.0,
    )


def test_fig10_object_sizes(benchmark, scale):
    result = benchmark.pedantic(_run, args=(scale,), iterations=1, rounds=1)
    print_report(
        "Fig. 10 -- latency per object size (optimal vs Ceph LRU cache tier)",
        fig10_object_sizes.format_result(result),
    )
    for comparison in result.comparisons:
        assert comparison.optimal_latency_ms <= comparison.baseline_latency_ms * 1.05
