"""Benchmark: epoch-batched cluster trace replay vs the per-request loop.

Closes the ROADMAP item "vectorize the cluster-emulation read benchmark":
the same seeded trace is replayed three ways --

* the legacy per-request cache-tier emulation (``CacheTier.read_object``
  in a Python loop, one scalar service draw per chunk),
* the per-request reference engine of the new trace-replay interface, and
* the epoch-batched vectorised engine,

on a hot-set Zipf workload (the high-hit-ratio regime a cache tier is
provisioned for).  The epoch engine must be >= 8x faster than the
per-request emulation (measured ~10-12x; the gate leaves noise headroom) while classifying every request identically (hit
counters match the legacy tier exactly, and all counters plus latencies
match the reference engine to ~1e-12).  Results land in
``BENCH_cluster_replay.json``.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import print_report, write_bench_json

from repro.cluster.cluster import CephLikeCluster, ClusterConfig
from repro.cluster.replay import ClusterReplay, ReplayTrace

#: Required wall-clock advantage of the epoch engine over the per-request
#: cluster emulation (CI gate).  Measured speedup is ~10-12x, but the
#: denominator is a sub-second epoch-engine run, so shared-runner noise
#: easily costs 10-20%: the gate sits at 8x to leave real headroom while
#: still failing on any genuine regression of the vectorised path.
REQUIRED_SPEEDUP = 8.0

#: Aggregate read rate (req/s).  The two SSD cache devices serve a 64 MB
#: object in ~388 ms, so 4 req/s keeps the tier inside its stability
#: region (utilisation ~0.78) and the reported latencies meaningful.
AGGREGATE_RATE = 4.0

SCALES = {
    "fast": {"num_objects": 1000, "duration_s": 37_500.0},
    "paper": {"num_objects": 1000, "duration_s": 225_000.0},
}


def _workload(num_objects: int, alpha: float = 1.8, total_rate: float = AGGREGATE_RATE):
    weights = 1.0 / np.arange(1, num_objects + 1) ** alpha
    weights /= weights.sum()
    return {
        f"obj-{index}": total_rate * float(weight)
        for index, weight in enumerate(weights)
    }


def test_cluster_replay_speedup(benchmark, scale):
    params = SCALES["paper" if scale == "paper" else "fast"]
    rates = _workload(params["num_objects"])
    config = ClusterConfig(
        object_size_mb=64,
        cache_capacity_mb=64 * 300,  # hot set fits: ~99% hit ratio
        seed=7,
    )
    trace = ReplayTrace.from_rates(rates, params["duration_s"], seed=11)
    replay = ClusterReplay(config, list(rates), policy="lru")

    # --- Epoch-batched engine (the benchmark target).
    epoch_result = benchmark.pedantic(
        replay.run, args=(trace,), kwargs={"engine": "epoch", "seed": 3},
        iterations=1, rounds=1,
    )
    start = time.perf_counter()
    epoch_result = replay.run(trace, engine="epoch", seed=3)
    epoch_seconds = time.perf_counter() - start

    # --- Per-request reference engine of the replay interface.
    start = time.perf_counter()
    reference_result = replay.run(trace, engine="request", seed=3)
    reference_seconds = time.perf_counter() - start

    # --- Legacy per-request cache-tier emulation on the same trace.
    cluster = CephLikeCluster(config)
    cluster.setup_lru_baseline(list(rates))
    tier = cluster.cache_tier
    object_ids = trace.object_ids
    legacy_hits = 0
    start = time.perf_counter()
    for time_ms, position in zip(
        trace.times_ms.tolist(), trace.object_positions.tolist()
    ):
        _, hit = tier.read_object(object_ids[position], time_ms)
        legacy_hits += hit
    legacy_seconds = time.perf_counter() - start

    speedup_vs_legacy = legacy_seconds / epoch_seconds
    speedup_vs_reference = reference_seconds / epoch_seconds

    # Exactness: identical counters and (up to float reassociation in the
    # closed-form Lindley scans) identical per-request latencies.
    assert epoch_result.hits == reference_result.hits
    assert epoch_result.promotions == reference_result.promotions
    assert epoch_result.evictions_mb == reference_result.evictions_mb
    assert epoch_result.chunks_from_cache == reference_result.chunks_from_cache
    np.testing.assert_allclose(
        epoch_result.latencies_ms, reference_result.latencies_ms,
        rtol=1e-9, atol=1e-9,
    )
    mean_gap = abs(
        epoch_result.mean_latency_ms() - reference_result.mean_latency_ms()
    ) / reference_result.mean_latency_ms()
    assert mean_gap <= 1e-9
    # The policy-backed legacy tier classifies the same trace identically.
    assert legacy_hits == epoch_result.hits

    write_bench_json(
        "cluster_replay",
        {
            "name": "cluster_replay",
            "scale": scale,
            "policy": "lru",
            "requests": trace.num_requests,
            "hit_ratio": epoch_result.hit_ratio,
            "legacy_per_request_seconds": legacy_seconds,
            "reference_engine_seconds": reference_seconds,
            "epoch_engine_seconds": epoch_seconds,
            "speedup_vs_legacy": speedup_vs_legacy,
            "speedup_vs_reference": speedup_vs_reference,
            "epoch_requests_per_second": trace.num_requests / epoch_seconds,
            "mean_latency_ms": epoch_result.mean_latency_ms(),
            "mean_latency_relative_gap": mean_gap,
            "required_speedup": REQUIRED_SPEEDUP,
        },
    )
    print_report(
        "Cluster trace replay -- epoch-batched vs per-request emulation",
        f"{trace.num_requests} requests, hit ratio {epoch_result.hit_ratio:.1%}:\n"
        f"  legacy per-request emulation  {legacy_seconds:8.3f} s\n"
        f"  reference replay engine       {reference_seconds:8.3f} s\n"
        f"  epoch-batched engine          {epoch_seconds:8.3f} s\n"
        f"  -> {speedup_vs_legacy:.1f}x vs legacy (gate >= {REQUIRED_SPEEDUP:.0f}x), "
        f"{speedup_vs_reference:.1f}x vs reference, "
        f"{trace.num_requests / epoch_seconds:,.0f} req/s",
    )
    assert speedup_vs_legacy >= REQUIRED_SPEEDUP
