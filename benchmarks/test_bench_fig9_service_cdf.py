"""Benchmark: Fig. 9 / Table IV -- chunk service-time CDFs per chunk size."""

from __future__ import annotations

from conftest import print_report, timed_run

from repro.api import get_experiment

SPEC = get_experiment("fig9")


def _run(scale: str):
    return SPEC.run(scale=scale)


def _metrics(result):
    return {
        "samples_per_size": result.samples_per_size,
        "chunk_sizes_mb": [cdf.chunk_size_mb for cdf in result.cdfs],
    }


def test_fig9_service_cdf(benchmark, scale):
    result, _ = timed_run(
        benchmark, "fig9_service_cdf", scale, _run, scale, metrics=_metrics
    )
    print_report(
        "Fig. 9 / Table IV -- chunk service-time distribution", SPEC.format(result)
    )
    for cdf in result.cdfs:
        assert abs(cdf.sample_mean_ms - cdf.table_mean_ms) / cdf.table_mean_ms < 0.05
