"""Benchmark: Fig. 4 -- average latency versus cache size."""

from __future__ import annotations

from conftest import print_report, timed_run

from repro.api import get_experiment

SPEC = get_experiment("fig4")


def _run(scale: str):
    return SPEC.run(scale=scale)


def _metrics(result):
    return {
        "objective": result.points[-1].latency,
        "num_files": result.num_files,
        "sweep_points": len(result.points),
    }


def test_fig4_cache_size(benchmark, scale):
    result, _ = timed_run(
        benchmark, "fig4_cache_size", scale, _run, scale, metrics=_metrics
    )
    print_report("Fig. 4 -- average latency vs cache size", SPEC.format(result))
    assert result.is_nonincreasing(tolerance=1e-3)
    assert result.points[-1].latency <= result.points[0].latency
