"""Benchmark: Fig. 4 -- average latency versus cache size."""

from __future__ import annotations

from conftest import print_report, timed_run

from repro.experiments import fig4_cache_size


def _run(scale: str):
    if scale == "paper":
        return fig4_cache_size.run()
    return fig4_cache_size.run(num_files=100)


def _metrics(result):
    return {
        "objective": result.points[-1].latency,
        "num_files": result.num_files,
        "sweep_points": len(result.points),
    }


def test_fig4_cache_size(benchmark, scale):
    result, _ = timed_run(
        benchmark, "fig4_cache_size", scale, _run, scale, metrics=_metrics
    )
    print_report(
        "Fig. 4 -- average latency vs cache size",
        fig4_cache_size.format_result(result),
    )
    assert result.is_nonincreasing(tolerance=1e-3)
    assert result.points[-1].latency <= result.points[0].latency
