"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper in a reduced,
shape-preserving configuration (so the whole suite runs in minutes on a
laptop) and prints the regenerated rows/series next to the timing numbers.
Set the environment variable ``SPROUT_BENCH_SCALE=paper`` to run the
full-size configurations instead.

Besides the human-readable report, every benchmark dumps a machine-readable
``BENCH_<name>.json`` under ``benchmarks/out/`` (wall time plus benchmark-
specific metrics such as requests/second or the converged objective).  The
copies at the repository root are the committed *gate records*; refresh
them deliberately with ``python benchmarks/compare.py promote``, which
copies a fresh file over the committed one only when a gate verdict or a
gate-relevant field moved -- raw timing noise never lands in the diff.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

import pytest

from repro.api.serialize import write_json

#: Repository root, where the committed ``BENCH_<name>.json`` gate records live.
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Where fresh benchmark runs write their JSON (gitignored).
OUT_DIR = Path(__file__).resolve().parent / "out"


def bench_scale() -> str:
    """Return the benchmark scale: ``"fast"`` (default) or ``"paper"``."""
    return os.environ.get("SPROUT_BENCH_SCALE", "fast")


@pytest.fixture(scope="session")
def scale() -> str:
    """Session-wide benchmark scale fixture."""
    return bench_scale()


def print_report(title: str, body: str) -> None:
    """Print a regenerated table/figure below the benchmark timings."""
    separator = "=" * 72
    print(f"\n{separator}\n{title}\n{separator}\n{body}\n")


def write_bench_json(name: str, payload: Dict[str, Any]) -> Path:
    """Write one benchmark's metrics to ``benchmarks/out/BENCH_<name>.json``.

    Serialization goes through :func:`repro.api.serialize.write_json`, the
    same uniform serializer behind ``RunResult.to_json`` and the CLI's
    ``--json`` mode, so numpy scalars/arrays in metric dicts are handled.
    ``benchmarks/compare.py`` checks the gate fields of these files and
    promotes them to the committed root records only when a gate moves.
    """
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    return write_json(OUT_DIR / f"BENCH_{name}.json", payload)


def timed_run(
    benchmark,
    name: str,
    scale: str,
    fn: Callable[..., Any],
    *args: Any,
    metrics: Optional[Callable[[Any], Dict[str, Any]]] = None,
) -> Tuple[Any, float]:
    """Run ``fn`` under pytest-benchmark, dump its timing JSON, return result.

    ``metrics`` optionally maps the benchmark result to extra key/value
    pairs (objective, requests/second, ...) recorded in the JSON payload.
    """
    start = time.perf_counter()
    result = benchmark.pedantic(fn, args=args, iterations=1, rounds=1)
    wall_seconds = time.perf_counter() - start
    payload: Dict[str, Any] = {
        "name": name,
        "scale": scale,
        "wall_seconds": wall_seconds,
    }
    if metrics is not None:
        payload.update(metrics(result))
    write_bench_json(name, payload)
    return result, wall_seconds
