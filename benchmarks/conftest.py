"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper in a reduced,
shape-preserving configuration (so the whole suite runs in minutes on a
laptop) and prints the regenerated rows/series next to the timing numbers.
Set the environment variable ``SPROUT_BENCH_SCALE=paper`` to run the
full-size configurations instead.
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> str:
    """Return the benchmark scale: ``"fast"`` (default) or ``"paper"``."""
    return os.environ.get("SPROUT_BENCH_SCALE", "fast")


@pytest.fixture(scope="session")
def scale() -> str:
    """Session-wide benchmark scale fixture."""
    return bench_scale()


def print_report(title: str, body: str) -> None:
    """Print a regenerated table/figure below the benchmark timings."""
    separator = "=" * 72
    print(f"\n{separator}\n{title}\n{separator}\n{body}\n")
