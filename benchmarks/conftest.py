"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper in a reduced,
shape-preserving configuration (so the whole suite runs in minutes on a
laptop) and prints the regenerated rows/series next to the timing numbers.
Set the environment variable ``SPROUT_BENCH_SCALE=paper`` to run the
full-size configurations instead.

Besides the human-readable report, every benchmark dumps a machine-readable
``BENCH_<name>.json`` at the repository root (wall time plus benchmark-
specific metrics such as requests/second or the converged objective) so the
performance trajectory can be tracked across revisions.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

import pytest

from repro.api.serialize import write_json

#: Repository root, where the ``BENCH_<name>.json`` files land.
REPO_ROOT = Path(__file__).resolve().parent.parent


def bench_scale() -> str:
    """Return the benchmark scale: ``"fast"`` (default) or ``"paper"``."""
    return os.environ.get("SPROUT_BENCH_SCALE", "fast")


@pytest.fixture(scope="session")
def scale() -> str:
    """Session-wide benchmark scale fixture."""
    return bench_scale()


def print_report(title: str, body: str) -> None:
    """Print a regenerated table/figure below the benchmark timings."""
    separator = "=" * 72
    print(f"\n{separator}\n{title}\n{separator}\n{body}\n")


def write_bench_json(name: str, payload: Dict[str, Any]) -> Path:
    """Write one benchmark's metrics to ``BENCH_<name>.json`` at the repo root.

    Serialization goes through :func:`repro.api.serialize.write_json`, the
    same uniform serializer behind ``RunResult.to_json`` and the CLI's
    ``--json`` mode, so numpy scalars/arrays in metric dicts are handled.
    """
    return write_json(REPO_ROOT / f"BENCH_{name}.json", payload)


def timed_run(
    benchmark,
    name: str,
    scale: str,
    fn: Callable[..., Any],
    *args: Any,
    metrics: Optional[Callable[[Any], Dict[str, Any]]] = None,
) -> Tuple[Any, float]:
    """Run ``fn`` under pytest-benchmark, dump its timing JSON, return result.

    ``metrics`` optionally maps the benchmark result to extra key/value
    pairs (objective, requests/second, ...) recorded in the JSON payload.
    """
    start = time.perf_counter()
    result = benchmark.pedantic(fn, args=args, iterations=1, rounds=1)
    wall_seconds = time.perf_counter() - start
    payload: Dict[str, Any] = {
        "name": name,
        "scale": scale,
        "wall_seconds": wall_seconds,
    }
    if metrics is not None:
        payload.update(metrics(result))
    write_bench_json(name, payload)
    return result, wall_seconds
